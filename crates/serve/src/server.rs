//! The serving loop: admission queue → micro-batcher → B-Par executor.
//!
//! One [`Server`] owns the model and a single resident
//! [`TaskGraphExec`] (and therefore one worker pool); the model stays
//! warm across batches instead of being re-materialized per request.
//! The executor caches one compiled execution plan per padded batch
//! shape, so a steady-state batch neither deep-copies the weights nor
//! re-resolves task dependencies — it swaps inputs into the cached
//! replicas and replays the frozen graph
//! (see [`Server::plan_cache_stats`]).
//! Batches formed by the [`MicroBatcher`] run with `mbs = 1`, which is
//! bit-identical to [`bpar_core::exec::SequentialExec`] — so with
//! exact-length buckets (`bucket_width == 1`, no padding) a served
//! response carries exactly the logits sequential inference would have
//! produced for that request alone.

use crate::batcher::{BatchPolicy, MicroBatcher};
use crate::metrics::MetricsCollector;
use crate::queue::{AdmissionQueue, BackpressurePolicy, Popped};
use crate::request::{InferRequest, InferResponse, Outcome, ResponseTiming};
use bpar_core::exec::{Executor, PlanCacheStats, TaskGraphExec};
use bpar_core::model::Brnn;
use bpar_runtime::SchedulerPolicy;
use bpar_tensor::{Float, Matrix};
use std::time::{Duration, Instant};

/// Full serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// What a full queue does with new arrivals.
    pub policy: BackpressurePolicy,
    /// Micro-batch closing policy.
    pub batch: BatchPolicy,
    /// Runtime worker threads (`0` = available parallelism).
    pub workers: usize,
    /// Task scheduling policy for the worker pool.
    pub scheduler: SchedulerPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            batch: BatchPolicy::new(8, Duration::from_millis(2)),
            workers: 0,
            scheduler: SchedulerPolicy::LocalityAware,
        }
    }
}

impl ServeConfig {
    /// Canonical string for [`crate::metrics::config_hash`]: every field
    /// that changes behaviour, in a fixed order.
    pub fn canonical(&self) -> String {
        format!(
            "cap={},policy={},max_batch={},window_us={},bucket_width={},workers={},sched={:?}",
            self.queue_capacity,
            self.policy.name(),
            self.batch.max_batch,
            self.batch.window.as_micros(),
            self.batch.bucket_width,
            self.workers,
            self.scheduler,
        )
    }
}

/// Inference server: resident model + resident executor + serving loop.
pub struct Server<T: Float> {
    model: Brnn<T>,
    exec: TaskGraphExec,
    config: ServeConfig,
}

impl<T: Float> Server<T> {
    /// Builds a server around `model`. The executor (and its worker
    /// pool) is created once here and reused for every batch.
    pub fn new(model: Brnn<T>, config: ServeConfig) -> Self {
        // mbs = 1 keeps each batch bit-identical to sequential execution;
        // data parallelism comes from batching requests, not splitting
        // the batch again.
        let exec = TaskGraphExec::with_config(config.workers, config.scheduler, 1);
        Self {
            model,
            exec,
            config,
        }
    }

    /// The resident model.
    pub fn model(&self) -> &Brnn<T> {
        &self.model
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Execution-plan cache counters of the resident executor. In steady
    /// state (`bucket_width == 1` or any bounded set of padded shapes)
    /// `misses` plateaus at the number of distinct batch shapes and
    /// `weight_syncs` stays at `misses` — no per-batch model clones.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.exec.plan_cache_stats()
    }

    /// Runs the serving loop until `queue` is closed and fully drained
    /// (including partially filled buckets). Serve-side outcomes —
    /// [`Outcome::Served`], deadline [`Outcome::Shed`]s, and
    /// [`Outcome::Rejected`] for malformed requests — are recorded into
    /// `metrics` and forwarded to `on_outcome`. Admission-side outcomes
    /// (queue rejects/sheds) are the producer's to report.
    pub fn serve(
        &self,
        queue: &AdmissionQueue<T>,
        metrics: &mut MetricsCollector,
        mut on_outcome: impl FnMut(Outcome<T>),
    ) {
        let shed_expired = self.config.policy == BackpressurePolicy::ShedExpired;
        let mut batcher = MicroBatcher::new(self.config.batch);
        loop {
            let now = Instant::now();
            if shed_expired {
                for req in batcher.take_expired(now) {
                    let outcome = Outcome::Shed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
            }
            if let Some(batch) = batcher.pop_ready(now, false) {
                self.run_batch(batch, metrics, &mut on_outcome);
                continue;
            }
            match queue.pop_wait(batcher.next_deadline()) {
                Popped::Item(req) => batcher.offer(req, Instant::now()),
                Popped::TimedOut => {} // a bucket window expired; next pop_ready closes it
                Popped::Closed => break,
            }
        }
        // Drain: force-close every remaining bucket.
        loop {
            let now = Instant::now();
            if shed_expired {
                for req in batcher.take_expired(now) {
                    let outcome = Outcome::Shed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
            }
            match batcher.pop_ready(now, true) {
                Some(batch) => self.run_batch(batch, metrics, &mut on_outcome),
                None => break,
            }
        }
    }

    /// Executes one closed batch and emits its outcomes.
    fn run_batch(
        &self,
        batch: Vec<InferRequest<T>>,
        metrics: &mut MetricsCollector,
        on_outcome: &mut impl FnMut(Outcome<T>),
    ) {
        let close = Instant::now();
        let dim = self.model.config.input_size;
        let mut live: Vec<InferRequest<T>> = Vec::with_capacity(batch.len());
        for req in batch {
            // Malformed sequences can't be served; bounce them rather
            // than poisoning the whole batch.
            if req.seq_len() == 0 || req.frames.iter().any(|f| f.len() != dim) {
                let outcome = Outcome::Rejected { id: req.id };
                metrics.record_outcome(&outcome);
                on_outcome(outcome);
            } else {
                live.push(req);
            }
        }
        if live.is_empty() {
            return;
        }
        let rows = live.len();
        let padded_len = live.iter().map(InferRequest::seq_len).max().unwrap_or(0);
        let real_frames: u64 = live.iter().map(|r| r.seq_len() as u64).sum();
        // One `rows × input_size` matrix per timestep; short sequences are
        // zero-padded at the tail (none are short when `bucket_width == 1`).
        let xs: Vec<Matrix<T>> = (0..padded_len)
            .map(|t| {
                Matrix::from_fn(rows, dim, |r, c| {
                    live[r].frames.get(t).map_or(T::ZERO, |frame| frame[c])
                })
            })
            .collect();
        // A task panic must not take the server down with it: fail this
        // batch's requests and keep the loop (and worker pool) alive.
        let out = match self.exec.try_forward(&self.model, &xs) {
            Ok(out) => out,
            Err(_) => {
                for req in live {
                    let outcome = Outcome::Failed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
                return;
            }
        };
        let done = Instant::now();
        let service = done.duration_since(close);
        metrics.record_batch(rows, padded_len, real_frames);
        for (r, req) in live.into_iter().enumerate() {
            let outcome = Outcome::Served(InferResponse {
                id: req.id,
                logits: out.logits.row(r).to_vec(),
                timing: ResponseTiming {
                    queue_wait: close.duration_since(req.arrival),
                    service,
                    total: done.duration_since(req.arrival),
                    batch_rows: rows,
                    padded_len,
                },
            });
            metrics.record_outcome(&outcome);
            on_outcome(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Admission;
    use bpar_core::exec::SequentialExec;
    use bpar_core::model::BrnnConfig;
    use std::sync::Arc;

    fn tiny_model() -> Brnn<f32> {
        Brnn::new(
            BrnnConfig {
                input_size: 4,
                hidden_size: 3,
                layers: 1,
                seq_len: 5,
                output_size: 3,
                ..BrnnConfig::default()
            },
            7,
        )
    }

    fn frames(len: usize, dim: usize, salt: u64) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| {
                (0..dim)
                    .map(|c| ((salt as usize + 3 * t + c) % 7) as f32 * 0.25 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn serves_and_matches_sequential() {
        let model = tiny_model();
        let server = Server::new(
            model.clone(),
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(4, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = Arc::new(AdmissionQueue::new(16, BackpressurePolicy::Block));
        for id in 0..5u64 {
            let req = InferRequest::new(id, frames(3 + (id as usize % 3), 4, id));
            assert!(matches!(queue.push(req), Admission::Admitted { .. }));
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut responses = Vec::new();
        server.serve(&queue, &mut metrics, |o| {
            if let Outcome::Served(r) = o {
                responses.push(r);
            }
        });
        assert_eq!(responses.len(), 5);
        let seq = SequentialExec;
        for resp in &responses {
            let fr = frames(3 + (resp.id as usize % 3), 4, resp.id);
            let xs: Vec<Matrix<f32>> = fr
                .iter()
                .map(|f| Matrix::from_vec(1, 4, f.clone()))
                .collect();
            let expect = seq.forward(&model, &xs);
            assert_eq!(resp.logits, expect.logits.row(0).to_vec());
        }
    }

    #[test]
    fn executor_panic_fails_batch_but_server_survives() {
        // A model whose config promises more layers than it has: every
        // batch's first deep-layer task panics on the missing index. The
        // serve loop must turn that into per-request `Failed` outcomes
        // and keep draining — not abort the process.
        let mut model = tiny_model();
        model.config.layers += 1;
        let server = Server::new(
            model,
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(2, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = AdmissionQueue::new(8, BackpressurePolicy::Block);
        for id in 0..3u64 {
            queue.push(InferRequest::new(id, frames(4, 4, id)));
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut failed = Vec::new();
        server.serve(&queue, &mut metrics, |o| {
            assert!(matches!(o, Outcome::Failed { .. }), "got {:?}", o.id());
            failed.push(o.id());
        });
        failed.sort_unstable();
        assert_eq!(failed, vec![0, 1, 2]);
        assert_eq!(metrics.failed(), 3);
        assert_eq!(metrics.served(), 0);
        // The broken plan was evicted rather than cached.
        assert_eq!(server.plan_cache_stats().cached_plans, 0);
    }

    #[test]
    fn malformed_requests_are_rejected_not_served() {
        let server = Server::new(tiny_model(), ServeConfig::default());
        let queue = AdmissionQueue::new(4, BackpressurePolicy::Block);
        queue.push(InferRequest::new(0, vec![])); // empty sequence
        queue.push(InferRequest::new(1, vec![vec![0.0; 9]])); // wrong width
        queue.push(InferRequest::new(2, frames(4, 4, 2)));
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut got = Vec::new();
        server.serve(&queue, &mut metrics, |o| got.push(o.id()));
        assert_eq!(metrics.rejected(), 2);
        assert_eq!(metrics.served(), 1);
        assert_eq!(got.len(), 3);
    }
}
