//! The serving loop: admission queue → micro-batcher → B-Par executor.
//!
//! One [`Server`] owns the model and a single resident
//! [`TaskGraphExec`] (and therefore one worker pool); the model stays
//! warm across batches instead of being re-materialized per request.
//! The executor caches one compiled execution plan per padded batch
//! shape, so a steady-state batch neither deep-copies the weights nor
//! re-resolves task dependencies — it swaps inputs into the cached
//! replicas and replays the frozen graph
//! (see [`Server::plan_cache_stats`]).
//! Batches formed by the [`MicroBatcher`] run with `mbs = 1`, which is
//! bit-identical to [`bpar_core::exec::SequentialExec`] — so with
//! exact-length buckets (`bucket_width == 1`, no padding) a served
//! response carries exactly the logits sequential inference would have
//! produced for that request alone.

use crate::batcher::{BatchPolicy, MicroBatcher};
use crate::breaker::{BreakerConfig, BreakerTransition, CircuitBreaker};
use crate::metrics::MetricsCollector;
use crate::pool::{BufferPool, PoolStats};
use crate::queue::{AdmissionQueue, BackpressurePolicy, Popped};
use crate::request::{InferRequest, InferResponse, Outcome, ResponseTiming};
use bpar_core::exec::{PlanCacheStats, TaskGraphExec};
use bpar_core::model::Brnn;
use bpar_core::scanplan::RecurrenceStrategy;
use bpar_runtime::{FaultConfig, FaultPlan, SchedulerPolicy};
use bpar_tensor::{BackendKind, Float};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retry policy for batches that fail in the executor.
///
/// A failed request is re-executed as a **singleton** batch (poison
/// isolation: one bad request can no longer repeatedly kill its
/// batch-mates) after an exponential backoff with deterministic jitter.
/// Requests already past their deadline are not retried — a retry that
/// cannot possibly be served in time only steals executor capacity from
/// live traffic.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-execution attempts per request after its first failure.
    pub max_retries: u32,
    /// Backoff before retry `n` is `base · 2^(n-1)`, capped.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Jitter amplitude as a fraction of the backoff: the delay is
    /// scaled by a deterministic factor in `[1 - f, 1 + f]` keyed on
    /// `(request id, attempt)`, decorrelating retry bursts without
    /// sacrificing replayability.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(5),
            jitter_frac: 0.2,
        }
    }
}

impl RetryPolicy {
    /// Disables retries: a failed batch fails its requests immediately.
    pub fn disabled() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// Zero-delay retries (used by determinism tests, where any real
    /// sleep would make run timing part of the observable behaviour).
    pub fn immediate(max_retries: u32) -> Self {
        Self {
            max_retries,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            jitter_frac: 0.0,
        }
    }

    /// Backoff before retry `attempt` (1-based) of request `id`.
    pub fn backoff(&self, id: u64, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16))
            .min(self.backoff_cap);
        if self.jitter_frac <= 0.0 || exp.is_zero() {
            return exp;
        }
        // splitmix64 over (id, attempt): deterministic jitter.
        let mut x = id
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(attempt as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 + self.jitter_frac * (2.0 * u - 1.0);
        exp.mul_f64(factor.max(0.0))
    }
}

/// Full serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// What a full queue does with new arrivals.
    pub policy: BackpressurePolicy,
    /// Micro-batch closing policy.
    pub batch: BatchPolicy,
    /// Runtime worker threads (`0` = available parallelism).
    pub workers: usize,
    /// Task scheduling policy for the worker pool.
    pub scheduler: SchedulerPolicy,
    /// What to do with requests whose batch failed in the executor.
    pub retry: RetryPolicy,
    /// When sustained failure trips degraded mode.
    pub breaker: BreakerConfig,
    /// Whether a request whose [`bpar_runtime::CancelCell`] is already
    /// claimed (its hedge twin won) is skipped instead of executed.
    /// `true` is the latency-optimizing mode: cancelled copies shed their
    /// remaining work, including mid-batch via the runtime's cancel
    /// token. `false` is the deterministic-redundancy mode: every copy
    /// executes fully and the claim decides only who *delivers*, so
    /// same-seed runs produce bit-identical work counters.
    pub cancel_sheds_work: bool,
    /// Byte budget for the serve-side buffer pool (`None` = unlimited).
    pub pool_byte_budget: Option<u64>,
    /// Byte budget for the executor's compiled-plan cache
    /// (`None` = unlimited). Tenant-keyed plans make this the knob that
    /// bounds per-replica model memory under many tenants.
    pub plan_byte_budget: Option<u64>,
    /// Kernel backend inference batches dispatch through. `Scalar` (the
    /// default) keeps responses bit-identical to `SequentialExec`; `Simd`
    /// is also bit-identical on the forward path but uses vector
    /// kernels; `Int8` trades a documented quantization tolerance for
    /// throughput (weights are quantized once per revision sync).
    pub backend: BackendKind,
    /// How each direction's recurrence executes. `Chain` (the default)
    /// is the paper's timestep chain, bit-identical to sequential;
    /// `Scan { chunks }` runs the Blelloch parallel scan over sequence
    /// chunks for scannable (diagonal linear) cells, within the
    /// documented scan tolerance, and falls back to the chain for
    /// everything else.
    pub recurrence: RecurrenceStrategy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            policy: BackpressurePolicy::Block,
            batch: BatchPolicy::new(8, Duration::from_millis(2)),
            workers: 0,
            scheduler: SchedulerPolicy::LocalityAware,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            cancel_sheds_work: true,
            pool_byte_budget: None,
            plan_byte_budget: None,
            backend: BackendKind::Scalar,
            recurrence: RecurrenceStrategy::Chain,
        }
    }
}

impl ServeConfig {
    /// Canonical string for [`crate::metrics::config_hash`]: every field
    /// that changes behaviour, in a fixed order.
    pub fn canonical(&self) -> String {
        format!(
            "cap={},policy={},max_batch={},window_us={},bucket_width={},workers={},sched={:?},\
             retries={},backoff_us={},backoff_cap_us={},jitter={},\
             brk_fail={},brk_win={},brk_rec={},\
             cancel_sheds={},pool_budget={},plan_budget={},backend={},recurrence={}",
            self.queue_capacity,
            self.policy.name(),
            self.batch.max_batch,
            self.batch.window.as_micros(),
            self.batch.bucket_width,
            self.workers,
            self.scheduler,
            self.retry.max_retries,
            self.retry.backoff_base.as_micros(),
            self.retry.backoff_cap.as_micros(),
            self.retry.jitter_frac,
            self.breaker.failure_threshold,
            self.breaker.window,
            self.breaker.recovery,
            self.cancel_sheds_work,
            self.pool_byte_budget.unwrap_or(0),
            self.plan_byte_budget.unwrap_or(0),
            self.backend,
            self.recurrence,
        )
    }
}

/// A failed request waiting for its singleton re-execution.
struct RetryEntry<T: Float> {
    req: InferRequest<T>,
    /// 1-based attempt number of the upcoming re-execution.
    attempt: u32,
    due: Instant,
}

/// Mutable serving-loop state threaded through batch execution, so a
/// failure can schedule retries and a breaker transition can flip the
/// batcher and queue into (or out of) degraded mode.
struct ServeState<'a, T: Float> {
    batcher: MicroBatcher<T>,
    breaker: CircuitBreaker,
    retries: VecDeque<RetryEntry<T>>,
    queue: &'a AdmissionQueue<T>,
    normal_policy: BackpressurePolicy,
    normal_max_batch: usize,
}

/// Inference server: resident models + resident executor + serving loop.
///
/// A server hosts one model per **tenant**; request `tenant` indexes
/// into that list. Tenants never share compiled plans (the executor's
/// plan cache is tenant-keyed — sharing would thrash weight revisions),
/// batches (the batcher keys buckets on tenant), or pooled buffers.
pub struct Server<T: Float> {
    models: Vec<Brnn<T>>,
    exec: TaskGraphExec,
    config: ServeConfig,
    /// Fault plan installed on the resident runtime, kept so reports can
    /// read the injection counters.
    fault: Mutex<Option<Arc<FaultPlan>>>,
    /// Per-batch input/output buffers, pooled by padded shape so a warm
    /// batch re-fills retained memory instead of allocating (the serve
    /// half of the executor's plan arena — see [`crate::pool`]).
    pool: Mutex<BufferPool<T>>,
    /// Latest [`crate::breaker::BreakerSnapshot`] encoding, published
    /// after every breaker record so a router can sample shard health
    /// without locking the serving loop.
    breaker_cell: Arc<AtomicU8>,
}

impl<T: Float> Server<T> {
    /// Builds a single-tenant server around `model`. The executor (and
    /// its worker pool) is created once here and reused for every batch.
    pub fn new(model: Brnn<T>, config: ServeConfig) -> Self {
        Self::with_tenants(vec![model], config)
    }

    /// Builds a multi-tenant server: `models[i]` serves requests whose
    /// `tenant == i`. One executor (and worker pool) is shared across
    /// tenants; plans, batches, and buffers stay tenant-isolated.
    pub fn with_tenants(models: Vec<Brnn<T>>, config: ServeConfig) -> Self {
        assert!(!models.is_empty(), "a server needs at least one tenant");
        // mbs = 1 keeps each batch bit-identical to sequential execution;
        // data parallelism comes from batching requests, not splitting
        // the batch again.
        let exec = TaskGraphExec::with_backend(config.workers, config.scheduler, 1, config.backend)
            .with_strategy(config.recurrence);
        exec.set_plan_byte_budget(config.plan_byte_budget);
        // Pool capacity mirrors the plan cache's order of magnitude: a
        // bucketed batcher produces one shape per (bucket, fill) pair, a
        // small bounded set.
        let pool = Mutex::new(BufferPool::new(32).with_byte_budget(config.pool_byte_budget));
        Self {
            models,
            exec,
            config,
            fault: Mutex::new(None),
            pool,
            breaker_cell: Arc::new(AtomicU8::new(0)),
        }
    }

    /// Installs a seeded [`FaultPlan`] on the resident runtime (chaos
    /// testing: injected task panics and stragglers). Returns the plan so
    /// callers can read its counters; [`Self::fault_plan`] retrieves it
    /// later. Install before serving so every batch runs under the plan.
    pub fn install_fault_plan(&self, config: FaultConfig) -> Arc<FaultPlan> {
        let plan = Arc::new(FaultPlan::new(config));
        self.exec.runtime().set_fault_plan(Some(plan.clone()));
        *self.fault.lock() = Some(plan.clone());
        plan
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.lock().clone()
    }

    /// The resident model of tenant 0 (the only tenant for servers built
    /// with [`Server::new`]).
    pub fn model(&self) -> &Brnn<T> {
        &self.models[0]
    }

    /// The model serving `tenant`, if that tenant exists.
    pub fn tenant_model(&self, tenant: u32) -> Option<&Brnn<T>> {
        self.models.get(tenant as usize)
    }

    /// Number of resident tenants.
    pub fn tenants(&self) -> usize {
        self.models.len()
    }

    /// Shared cell holding the latest breaker snapshot
    /// ([`crate::breaker::BreakerSnapshot::as_u8`] encoding). Routers
    /// sample it to steer traffic away from degraded shards.
    pub fn breaker_cell(&self) -> Arc<AtomicU8> {
        self.breaker_cell.clone()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Execution-plan cache counters of the resident executor. In steady
    /// state (`bucket_width == 1` or any bounded set of padded shapes)
    /// `misses` plateaus at the number of distinct batch shapes and
    /// `weight_syncs` stays at `misses` — no per-batch model clones.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.exec.plan_cache_stats()
    }

    /// Per-batch buffer-pool counters. In steady state `misses` plateaus
    /// at the number of distinct padded batch shapes — the same plateau as
    /// [`Self::plan_cache_stats`]' `misses` — and every further batch
    /// reuses pooled buffers.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.lock().stats()
    }

    /// Runs the serving loop until `queue` is closed and fully drained
    /// (including partially filled buckets and pending retries).
    /// Serve-side outcomes — [`Outcome::Served`], deadline
    /// [`Outcome::Shed`]s, [`Outcome::Rejected`] for malformed requests,
    /// and [`Outcome::Failed`] after the retry budget — are recorded into
    /// `metrics` and forwarded to `on_outcome`. Admission-side outcomes
    /// (queue rejects/sheds) are the producer's to report.
    ///
    /// Failed batches feed the retry queue per [`RetryPolicy`]; executor
    /// health feeds the [`CircuitBreaker`], which in degraded mode
    /// shrinks batches to singletons and flips the queue's backpressure
    /// to [`BackpressurePolicy::Reject`] until a clean window passes.
    pub fn serve(
        &self,
        queue: &AdmissionQueue<T>,
        metrics: &mut MetricsCollector,
        mut on_outcome: impl FnMut(Outcome<T>),
    ) {
        let shed_expired = self.config.policy == BackpressurePolicy::ShedExpired;
        let mut st = ServeState {
            batcher: MicroBatcher::new(self.config.batch),
            breaker: CircuitBreaker::new(self.config.breaker),
            retries: VecDeque::new(),
            queue,
            normal_policy: self.config.policy,
            normal_max_batch: self.config.batch.max_batch,
        };
        loop {
            let now = Instant::now();
            if shed_expired {
                for req in st.batcher.take_expired(now) {
                    let outcome = Outcome::Shed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
            }
            // Due retries run before fresh batches: they are the oldest
            // work in the system, and a singleton retry is cheap.
            if let Some(pos) = st.retries.iter().position(|e| now >= e.due) {
                let entry = st.retries.remove(pos).expect("position in bounds");
                self.execute(
                    vec![entry.req],
                    entry.attempt,
                    &mut st,
                    metrics,
                    &mut on_outcome,
                );
                continue;
            }
            if let Some(batch) = st.batcher.pop_ready(now, false) {
                self.execute(batch, 0, &mut st, metrics, &mut on_outcome);
                continue;
            }
            // Sleep until new work, the next bucket window, or the next
            // retry coming due — whichever is first.
            let wake = match (
                st.batcher.next_deadline(),
                st.retries.iter().map(|e| e.due).min(),
            ) {
                (Some(b), Some(r)) => Some(b.min(r)),
                (b, r) => b.or(r),
            };
            match queue.pop_wait(wake) {
                Popped::Item(req) => st.batcher.offer(req, Instant::now()),
                Popped::TimedOut => {} // a window or backoff expired; retry/pop_ready handles it
                Popped::Closed => break,
            }
        }
        // Drain: run out the retry queue (backoff waived — nothing new
        // can arrive, so waiting buys nothing) and force-close every
        // remaining bucket. Retries scheduled *during* the drain loop
        // back onto it, so every request still reaches a terminal
        // outcome.
        loop {
            let now = Instant::now();
            if shed_expired {
                for req in st.batcher.take_expired(now) {
                    let outcome = Outcome::Shed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
            }
            if let Some(entry) = st.retries.pop_front() {
                self.execute(
                    vec![entry.req],
                    entry.attempt,
                    &mut st,
                    metrics,
                    &mut on_outcome,
                );
                continue;
            }
            match st.batcher.pop_ready(now, true) {
                Some(batch) => self.execute(batch, 0, &mut st, metrics, &mut on_outcome),
                None => break,
            }
        }
    }

    /// Executes one closed batch (`attempt == 0`) or singleton retry
    /// (`attempt >= 1`) and emits outcomes, schedules retries, and feeds
    /// the breaker.
    fn execute(
        &self,
        batch: Vec<InferRequest<T>>,
        attempt: u32,
        st: &mut ServeState<'_, T>,
        metrics: &mut MetricsCollector,
        on_outcome: &mut impl FnMut(Outcome<T>),
    ) {
        let close = Instant::now();
        let cancel_sheds = self.config.cancel_sheds_work;
        let mut live: Vec<InferRequest<T>> = Vec::with_capacity(batch.len());
        for req in batch {
            // A hedge twin already won this request: shed the copy before
            // spending executor time on it (latency mode only — the
            // deterministic-redundancy mode executes every copy fully).
            if cancel_sheds && req.cancel.as_ref().is_some_and(|c| c.is_claimed()) {
                let outcome = Outcome::Cancelled { id: req.id };
                metrics.record_outcome(&outcome);
                on_outcome(outcome);
                continue;
            }
            // Malformed sequences and unknown tenants can't be served;
            // bounce them rather than poisoning the whole batch.
            let dim = self
                .models
                .get(req.tenant as usize)
                .map(|m| m.config.input_size);
            let well_formed = dim
                .is_some_and(|dim| req.seq_len() > 0 && req.frames.iter().all(|f| f.len() == dim));
            if well_formed {
                live.push(req);
            } else {
                let outcome = Outcome::Rejected { id: req.id };
                metrics.record_outcome(&outcome);
                on_outcome(outcome);
            }
        }
        if live.is_empty() {
            return;
        }
        let tenant = live[0].tenant;
        debug_assert!(
            live.iter().all(|r| r.tenant == tenant),
            "batches are tenant-pure: the batcher keys buckets on tenant \
             and retries are singletons"
        );
        let model = &self.models[tenant as usize];
        let dim = model.config.input_size;
        let rows = live.len();
        let padded_len = live.iter().map(InferRequest::seq_len).max().unwrap_or(0);
        let real_frames: u64 = live.iter().map(|r| r.seq_len() as u64).sum();
        // Check the batch's working set out of the shape-keyed pool: one
        // `rows × input_size` matrix per timestep plus the output buffer.
        // Every row is fully overwritten — short sequences get their tail
        // zero-filled explicitly (none are short when `bucket_width == 1`),
        // so a reused buffer can't leak a previous batch's frames.
        let mut bufs = self.pool.lock().checkout(model, tenant, rows, padded_len);
        for (t, x) in bufs.xs.iter_mut().enumerate() {
            let data = x.as_mut_slice();
            for (r, req) in live.iter().enumerate() {
                let dst = &mut data[r * dim..(r + 1) * dim];
                match req.frames.get(t) {
                    Some(frame) => dst.copy_from_slice(frame),
                    None => dst.fill(T::ZERO),
                }
            }
        }
        // A singleton hedged request gets the runtime's cancel token: if
        // its twin wins mid-batch, the remaining task bodies are skipped
        // (the epoch completes cleanly; the unread garbage output is
        // discarded by the post-execution claim check below). Batches
        // with more than one request never install a token — the epoch
        // is shared, and one request's cancellation must not starve its
        // batch-mates.
        let token = if cancel_sheds && rows == 1 {
            live[0].cancel.clone()
        } else {
            None
        };
        if token.is_some() {
            self.exec.runtime().set_cancel_token(token);
        }
        // A task panic must not take the server down with it: the batch's
        // requests go to the retry queue (or fail) and the loop — and its
        // worker pool — keeps serving. The buffers go back to the pool on
        // both paths; partially written output is fine because the next
        // batch fully overwrites before reading.
        let result =
            self.exec
                .try_forward_into_keyed(tenant as u64, model, &bufs.xs, &mut bufs.out);
        if cancel_sheds && rows == 1 {
            self.exec.runtime().set_cancel_token(None);
        }
        if result.is_err() {
            self.pool.lock().give_back(tenant, rows, padded_len, bufs);
            self.breaker_record(true, st, metrics);
            let now = Instant::now();
            for req in live {
                // A copy whose twin won while it was failing sheds its
                // retries too (latency mode): nobody is waiting for it.
                if cancel_sheds && req.cancel.as_ref().is_some_and(|c| c.is_claimed()) {
                    let outcome = Outcome::Cancelled { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                } else if attempt < self.config.retry.max_retries && !req.expired(now) {
                    metrics.record_retry(attempt == 0);
                    let due = now + self.config.retry.backoff(req.id, attempt + 1);
                    st.retries.push_back(RetryEntry {
                        req,
                        attempt: attempt + 1,
                        due,
                    });
                } else {
                    if attempt >= self.config.retry.max_retries && self.config.retry.max_retries > 0
                    {
                        metrics.record_retry_exhausted();
                    }
                    let outcome = Outcome::Failed { id: req.id };
                    metrics.record_outcome(&outcome);
                    on_outcome(outcome);
                }
            }
            return;
        }
        self.breaker_record(false, st, metrics);
        let done = Instant::now();
        let service = done.duration_since(close);
        metrics.record_batch(rows, padded_len, real_frames);
        for (r, req) in live.into_iter().enumerate() {
            // Hedged requests race for the claim: exactly one copy in the
            // fleet delivers `Served`; the rest observe a lost claim and
            // emit `Cancelled` (their computed output is discarded). The
            // mid-batch cancel token above makes a lost claim here also
            // the path that reports a body-skipped epoch: its claim was
            // taken, so its garbage output is never read.
            let delivers = match &req.cancel {
                Some(cell) => cell.try_claim(),
                None => true,
            };
            let outcome = if delivers {
                Outcome::Served(InferResponse {
                    id: req.id,
                    // The one remaining per-request allocation: a response
                    // outlives its batch and must own its logits row.
                    logits: bufs.out.logits.row(r).to_vec(),
                    timing: ResponseTiming {
                        queue_wait: close.duration_since(req.arrival),
                        service,
                        total: done.duration_since(req.arrival),
                        batch_rows: rows,
                        padded_len,
                        attempts: attempt,
                    },
                })
            } else {
                Outcome::Cancelled { id: req.id }
            };
            metrics.record_outcome(&outcome);
            on_outcome(outcome);
        }
        self.pool.lock().give_back(tenant, rows, padded_len, bufs);
    }

    /// Feeds one executor run into the breaker and applies any state
    /// transition: opening degrades the batcher to singletons and the
    /// queue to `Reject`; closing restores the configured policy.
    fn breaker_record(
        &self,
        failed: bool,
        st: &mut ServeState<'_, T>,
        metrics: &mut MetricsCollector,
    ) {
        match st.breaker.record(failed) {
            BreakerTransition::None => {}
            BreakerTransition::Opened => {
                metrics.record_breaker_opened();
                st.batcher.set_max_batch(1);
                st.queue.set_policy(BackpressurePolicy::Reject);
            }
            BreakerTransition::Closed => {
                metrics.record_breaker_closed();
                st.batcher.set_max_batch(st.normal_max_batch);
                st.queue.set_policy(st.normal_policy);
            }
        }
        self.breaker_cell
            .store(st.breaker.snapshot().as_u8(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Admission;
    use bpar_core::exec::{Executor, SequentialExec};
    use bpar_core::model::BrnnConfig;
    use bpar_runtime::CancelCell;
    use bpar_tensor::Matrix;
    use std::sync::Arc;

    fn tiny_model() -> Brnn<f32> {
        Brnn::new(
            BrnnConfig {
                input_size: 4,
                hidden_size: 3,
                layers: 1,
                seq_len: 5,
                output_size: 3,
                ..BrnnConfig::default()
            },
            7,
        )
    }

    fn frames(len: usize, dim: usize, salt: u64) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| {
                (0..dim)
                    .map(|c| ((salt as usize + 3 * t + c) % 7) as f32 * 0.25 - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn serves_and_matches_sequential() {
        let model = tiny_model();
        let server = Server::new(
            model.clone(),
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(4, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = Arc::new(AdmissionQueue::new(16, BackpressurePolicy::Block));
        for id in 0..5u64 {
            let req = InferRequest::new(id, frames(3 + (id as usize % 3), 4, id));
            assert!(matches!(queue.push(req), Admission::Admitted { .. }));
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut responses = Vec::new();
        server.serve(&queue, &mut metrics, |o| {
            if let Outcome::Served(r) = o {
                responses.push(r);
            }
        });
        assert_eq!(responses.len(), 5);
        let seq = SequentialExec;
        for resp in &responses {
            let fr = frames(3 + (resp.id as usize % 3), 4, resp.id);
            let xs: Vec<Matrix<f32>> = fr
                .iter()
                .map(|f| Matrix::from_vec(1, 4, f.clone()))
                .collect();
            let expect = seq.forward(&model, &xs);
            assert_eq!(resp.logits, expect.logits.row(0).to_vec());
        }
    }

    #[test]
    fn pooled_buffers_are_reused_across_batches() {
        // max_batch = 1 makes every batch a (1, 4) singleton: one padded
        // shape, so the pool and the plan arena must each allocate once
        // and serve every later batch from retained memory.
        let server = Server::new(
            tiny_model(),
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(1, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = AdmissionQueue::new(16, BackpressurePolicy::Block);
        for id in 0..6u64 {
            queue.push(InferRequest::new(id, frames(4, 4, id)));
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        server.serve(&queue, &mut metrics, |_| {});
        assert_eq!(metrics.served(), 6);
        let pool = server.pool_stats();
        assert_eq!(pool.misses, 1, "one shape allocates one buffer set");
        assert_eq!(pool.hits, 5);
        assert_eq!(pool.resident, 1);
        assert!(pool.resident_bytes > 0);
        let plans = server.plan_cache_stats();
        assert_eq!(plans.arena_reuses, 5, "five warm replays");
        assert!(plans.arena_bytes > 0);
    }

    #[test]
    fn executor_panic_fails_batch_but_server_survives() {
        // A model whose config promises more layers than it has: every
        // batch's first deep-layer task panics on the missing index. The
        // serve loop must turn that into per-request `Failed` outcomes
        // and keep draining — not abort the process.
        let mut model = tiny_model();
        model.config.layers += 1;
        let server = Server::new(
            model,
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(2, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = AdmissionQueue::new(8, BackpressurePolicy::Block);
        for id in 0..3u64 {
            queue.push(InferRequest::new(id, frames(4, 4, id)));
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut failed = Vec::new();
        server.serve(&queue, &mut metrics, |o| {
            assert!(matches!(o, Outcome::Failed { .. }), "got {:?}", o.id());
            failed.push(o.id());
        });
        failed.sort_unstable();
        assert_eq!(failed, vec![0, 1, 2]);
        assert_eq!(metrics.failed(), 3);
        assert_eq!(metrics.served(), 0);
        // The broken plan was evicted rather than cached.
        assert_eq!(server.plan_cache_stats().cached_plans, 0);
    }

    #[test]
    fn malformed_requests_are_rejected_not_served() {
        let server = Server::new(tiny_model(), ServeConfig::default());
        let queue = AdmissionQueue::new(8, BackpressurePolicy::Block);
        queue.push(InferRequest::new(0, vec![])); // empty sequence
        queue.push(InferRequest::new(1, vec![vec![0.0; 9]])); // wrong width
        queue.push(InferRequest::new(2, frames(4, 4, 2)));
        // Unknown tenant: a single-tenant server only hosts tenant 0.
        queue.push(InferRequest::new(3, frames(4, 4, 3)).with_tenant(5));
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut got = Vec::new();
        server.serve(&queue, &mut metrics, |o| got.push(o.id()));
        assert_eq!(metrics.rejected(), 3);
        assert_eq!(metrics.served(), 1);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn tenants_get_their_own_models_and_plans() {
        // Two tenants with the same architecture but different weights:
        // each request must be answered by *its* tenant's model, and the
        // executor must cache one plan per tenant (revision thrash would
        // show up as weight_syncs > misses).
        let model_a = tiny_model();
        let model_b = Brnn::<f32>::new(model_a.config, 99);
        // Singleton batches pin every execution to the (1, padded) shape,
        // so the plan count below is exactly one per tenant regardless of
        // arrival timing.
        let server = Server::with_tenants(
            vec![model_a.clone(), model_b.clone()],
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(1, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = AdmissionQueue::new(16, BackpressurePolicy::Block);
        for round in 0..3u64 {
            for tenant in 0..2u32 {
                let id = round * 2 + tenant as u64;
                queue.push(InferRequest::new(id, frames(4, 4, 7)).with_tenant(tenant));
            }
        }
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut responses = Vec::new();
        server.serve(&queue, &mut metrics, |o| {
            if let Outcome::Served(r) = o {
                responses.push(r);
            }
        });
        assert_eq!(responses.len(), 6);
        let seq = SequentialExec;
        let xs: Vec<Matrix<f32>> = frames(4, 4, 7)
            .iter()
            .map(|f| Matrix::from_vec(1, 4, f.clone()))
            .collect();
        let expect_a = seq.forward(&model_a, &xs).logits.row(0).to_vec();
        let expect_b = seq.forward(&model_b, &xs).logits.row(0).to_vec();
        assert_ne!(expect_a, expect_b, "different weights, different logits");
        for resp in &responses {
            let expect = if resp.id % 2 == 0 {
                &expect_a
            } else {
                &expect_b
            };
            assert_eq!(
                &resp.logits, expect,
                "request {} answered by wrong tenant",
                resp.id
            );
        }
        let plans = server.plan_cache_stats();
        assert_eq!(plans.cached_plans, 2, "one plan per tenant");
        assert_eq!(plans.weight_syncs, plans.misses, "no revision thrash");
    }

    #[test]
    fn claimed_requests_cancel_instead_of_serving() {
        let server = Server::new(
            tiny_model(),
            ServeConfig {
                workers: 2,
                batch: BatchPolicy::new(1, Duration::from_millis(1)),
                ..ServeConfig::default()
            },
        );
        let queue = AdmissionQueue::new(8, BackpressurePolicy::Block);
        // Pre-claimed cell: the "other copy" already won, so this copy
        // must shed without executing.
        let lost = Arc::new(CancelCell::new());
        assert!(lost.try_claim());
        queue.push(InferRequest::new(0, frames(4, 4, 0)).with_cancel(lost));
        // Unclaimed cell: this copy wins the claim and serves.
        let won = Arc::new(CancelCell::new());
        queue.push(InferRequest::new(1, frames(4, 4, 1)).with_cancel(won.clone()));
        queue.push(InferRequest::new(2, frames(4, 4, 2))); // no cell at all
        queue.close();
        let mut metrics = MetricsCollector::new();
        let mut cancelled = Vec::new();
        let mut served = Vec::new();
        server.serve(&queue, &mut metrics, |o| match o {
            Outcome::Cancelled { id } => cancelled.push(id),
            Outcome::Served(r) => served.push(r.id),
            other => panic!("unexpected outcome for {}", other.id()),
        });
        assert_eq!(cancelled, vec![0]);
        served.sort_unstable();
        assert_eq!(served, vec![1, 2]);
        assert_eq!(metrics.cancelled(), 1);
        assert_eq!(metrics.served(), 2);
        assert!(won.is_claimed(), "serving a hedged request claims its cell");
    }
}
