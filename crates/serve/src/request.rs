//! Request / response types and per-request latency accounting.

use bpar_runtime::cancel::CancelCell;
use bpar_tensor::Float;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One inference request: a variable-length feature sequence.
#[derive(Debug, Clone)]
pub struct InferRequest<T: Float> {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// Tenant (model) index this request targets. Single-tenant servers
    /// only accept `0`.
    pub tenant: u32,
    /// Feature frames, `seq_len × feature_dim` (row-major nested).
    pub frames: Vec<Vec<T>>,
    /// When the request entered the system.
    pub arrival: Instant,
    /// Optional latency budget relative to `arrival`. Under
    /// [`crate::queue::BackpressurePolicy::ShedExpired`], requests whose
    /// budget elapses before service starts are shed instead of served.
    pub deadline: Option<Duration>,
    /// Shared claim cell when this request is one copy of a hedged pair
    /// (see `bpar_runtime::cancel`). Cloning the request clones the
    /// `Arc`, so both copies race for the same claim.
    pub cancel: Option<Arc<CancelCell>>,
}

impl<T: Float> InferRequest<T> {
    /// A request arriving now.
    pub fn new(id: u64, frames: Vec<Vec<T>>) -> Self {
        Self {
            id,
            tenant: 0,
            frames,
            arrival: Instant::now(),
            deadline: None,
            cancel: None,
        }
    }

    /// Attaches a latency budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Targets a tenant (model) index.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Attaches a hedged-dispatch claim cell.
    pub fn with_cancel(mut self, cell: Arc<CancelCell>) -> Self {
        self.cancel = Some(cell);
        self
    }

    /// Sequence length in frames.
    pub fn seq_len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the latency budget has elapsed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        match self.deadline {
            Some(budget) => now.duration_since(self.arrival) >= budget,
            None => false,
        }
    }
}

/// Latency breakdown of a served request.
#[derive(Debug, Clone, Copy)]
pub struct ResponseTiming {
    /// Arrival to batch close (admission queue + batch window).
    pub queue_wait: Duration,
    /// Batch close to forward-pass completion.
    pub service: Duration,
    /// Arrival to response — what the client observes.
    pub total: Duration,
    /// Rows in the batch this request rode in.
    pub batch_rows: usize,
    /// Timesteps the batch was padded to.
    pub padded_len: usize,
    /// Retry attempts before this response: `0` means the first
    /// execution succeeded; `n ≥ 1` means the request survived `n`
    /// singleton re-executions after its original batch failed (so
    /// `attempts ≥ 1` implies `batch_rows == 1`).
    pub attempts: u32,
}

/// One served inference result.
#[derive(Debug, Clone)]
pub struct InferResponse<T: Float> {
    /// Echo of the request id.
    pub id: u64,
    /// Class scores (`output_size` logits). For many-to-many models this
    /// is the final timestep's logits, matching
    /// `bpar_core::exec::ForwardOutput::logits`.
    pub logits: Vec<T>,
    /// Latency accounting.
    pub timing: ResponseTiming,
}

/// Terminal disposition of a request. Conservation invariant: every
/// admitted-or-attempted request produces exactly one `Outcome`.
#[derive(Debug, Clone)]
pub enum Outcome<T: Float> {
    /// Served with a response.
    Served(InferResponse<T>),
    /// Dropped because its deadline expired before service
    /// (`ShedExpired`), or to make room for live requests.
    Shed {
        /// Echo of the request id.
        id: u64,
    },
    /// Refused admission (`Reject` policy with a full queue).
    Rejected {
        /// Echo of the request id.
        id: u64,
    },
    /// The batch this request rode in failed inside the executor (a task
    /// body panicked). Only that batch's requests fail; the server and
    /// its worker pool keep serving.
    Failed {
        /// Echo of the request id.
        id: u64,
    },
    /// This copy of a hedged request lost the claim race: a competing
    /// copy on another shard already delivered the terminal outcome, so
    /// this one resolves without a client-visible result. Never emitted
    /// for requests without a [`InferRequest::cancel`] cell.
    Cancelled {
        /// Echo of the request id.
        id: u64,
    },
}

impl<T: Float> Outcome<T> {
    /// The request id this outcome is for.
    pub fn id(&self) -> u64 {
        match self {
            Outcome::Served(r) => r.id,
            Outcome::Shed { id }
            | Outcome::Rejected { id }
            | Outcome::Failed { id }
            | Outcome::Cancelled { id } => *id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_respects_budget() {
        let mut r: InferRequest<f32> = InferRequest::new(1, vec![vec![0.0]]);
        let t0 = r.arrival;
        assert!(!r.expired(t0 + Duration::from_secs(1000)));
        r = r.with_deadline(Duration::from_millis(10));
        assert!(!r.expired(t0 + Duration::from_millis(9)));
        assert!(r.expired(t0 + Duration::from_millis(10)));
    }

    #[test]
    fn outcome_ids_echo() {
        let o: Outcome<f32> = Outcome::Rejected { id: 7 };
        assert_eq!(o.id(), 7);
        let o: Outcome<f32> = Outcome::Shed { id: 9 };
        assert_eq!(o.id(), 9);
    }
}
