//! Criterion benchmarks of the task runtime itself: submission +
//! dependency-resolution cost, end-to-end throughput of empty task
//! graphs, and the live B-Par executor on a small model.
//!
//! The paper's claim (§IV-B): task creation, scheduling and
//! synchronisation overhead stays an order of magnitude below useful
//! task time. These benches measure the overhead side of that ratio.

use bpar_core::exec::{Executor, SequentialExec, Target, TaskGraphExec};
use bpar_core::model::{Brnn, BrnnConfig};
use bpar_core::optim::Sgd;
use bpar_runtime::{RegionId, Runtime, RuntimeConfig};
use bpar_tensor::init;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);

    group.bench_function("independent_1000_empty_tasks", |b| {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            ..Default::default()
        });
        b.iter(|| {
            rt.reset();
            for i in 0..1000u64 {
                rt.spawn("t", [], [RegionId(i)], || {});
            }
            rt.taskwait().unwrap();
        })
    });

    group.bench_function("chain_1000_empty_tasks", |b| {
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            ..Default::default()
        });
        b.iter(|| {
            rt.reset();
            for _ in 0..1000 {
                rt.spawn("t", [RegionId(0)], [RegionId(0)], || {});
            }
            rt.taskwait().unwrap();
        })
    });
    group.finish();
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_batch");
    group.sample_size(10);
    let cfg = BrnnConfig {
        input_size: 16,
        hidden_size: 32,
        layers: 2,
        seq_len: 8,
        output_size: 4,
        ..Default::default()
    };
    let batch: Vec<_> = (0..cfg.seq_len)
        .map(|t| init::uniform::<f32>(8, cfg.input_size, -1.0, 1.0, t as u64))
        .collect();
    let target = Target::Classes(vec![0, 1, 2, 3, 0, 1, 2, 3]);

    group.bench_function("sequential", |b| {
        let exec = SequentialExec::new();
        let mut model: Brnn<f32> = Brnn::new(cfg, 1);
        let mut opt = Sgd::new(0.01);
        b.iter(|| black_box(exec.train_batch(&mut model, &batch, &target, &mut opt)))
    });

    group.bench_function("b-par_2workers", |b| {
        let exec = TaskGraphExec::new(2);
        let mut model: Brnn<f32> = Brnn::new(cfg, 1);
        let mut opt = Sgd::new(0.01);
        b.iter(|| black_box(exec.train_batch(&mut model, &batch, &target, &mut opt)))
    });
    group.finish();
}

criterion_group!(benches, bench_submission, bench_executors);
criterion_main!(benches);
