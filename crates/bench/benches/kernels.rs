//! Criterion benchmarks of the dense kernels that make up a B-Par task
//! body: blocked GEMM at RNN-cell shapes, and full LSTM/GRU cell updates
//! (forward and backward).

use bpar_core::cell::{CellKind, CellParams, CellState};
use bpar_tensor::{gemm, init, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    // (batch × (input+hidden)) · ((input+hidden) × 4·hidden): the fused
    // LSTM gate product at three model scales.
    for &(b, ih, h4) in &[
        (16usize, 96usize, 128usize),
        (32, 320, 512),
        (64, 512, 1024),
    ] {
        let a: Matrix<f32> = init::uniform(b, ih, -1.0, 1.0, 1);
        let w: Matrix<f32> = init::uniform(ih, h4, -1.0, 1.0, 2);
        let mut out: Matrix<f32> = Matrix::zeros(b, h4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{b}x{ih}x{h4}")),
            &(),
            |bench, _| {
                bench.iter(|| {
                    gemm(1.0f32, black_box(&a), black_box(&w), 0.0, &mut out);
                    black_box(out.get(0, 0))
                })
            },
        );
    }
    group.finish();
}

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_update");
    group.sample_size(10);
    for kind in [CellKind::Lstm, CellKind::Gru] {
        let (batch, input, hidden) = (16usize, 64usize, 128usize);
        let params: CellParams<f32> = CellParams::init(kind, input, hidden, 3);
        let x: Matrix<f32> = init::uniform(batch, input, -1.0, 1.0, 4);
        let prev = CellState::zeros(kind, batch, hidden);

        group.bench_function(format!("{kind:?}_forward"), |bench| {
            bench.iter(|| black_box(params.forward(black_box(&x), &prev)))
        });

        let (_, cache) = params.forward(&x, &prev);
        let dh: Matrix<f32> = init::uniform(batch, hidden, -1.0, 1.0, 5);
        group.bench_function(format!("{kind:?}_backward"), |bench| {
            bench.iter(|| {
                let mut grads = params.zeros_like();
                black_box(params.backward(&cache, black_box(&dh), None, &mut grads))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_cells);
criterion_main!(benches);
