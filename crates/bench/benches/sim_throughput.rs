//! Criterion benchmarks of the discrete-event simulator: events/second
//! replaying BRNN training graphs on 8 and 48 simulated cores.

use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let graph = build_graph(&GraphSpec::training(cfg, 128).with_mbs(8));
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(graph.len() as u64));
    for cores in [8usize, 48] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}tasks_{cores}cores", graph.len())),
            &cores,
            |b, &cores| b.iter(|| black_box(simulate(&graph, &SimConfig::xeon(cores)).makespan)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
