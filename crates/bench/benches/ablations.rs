//! Ablation benchmarks for the design choices DESIGN.md calls out,
//! measured as simulated 24-core batch times on the Table III
//! 256/256/128/100 model:
//!
//! * **barriers** — barrier-free B-Par vs the per-layer-barrier schedule
//!   (the paper's central claim),
//! * **scheduler** — locality-aware vs FIFO ready queue (Fig. 7),
//! * **merge-as-task** — merge cells as separate tasks (B-Par's choice,
//!   §III-A) vs merges fused into the consuming cells, which couples the
//!   two directions,
//! * **task granularity** — whole-cell tasks vs gate-split tasks (twice
//!   the tasks, twice the per-task overhead, same work),
//! * **data-parallelism** — mbs:1 vs mbs:8 (model parallelism alone vs
//!   combined).

use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn cfg() -> BrnnConfig {
    BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let free = build_graph(&GraphSpec::training(cfg(), 128).with_mbs(8));
    let barred = build_graph(
        &GraphSpec::training(cfg(), 128)
            .with_mbs(8)
            .with_barriers(true),
    );
    let mbs1 = build_graph(&GraphSpec::training(cfg(), 128));
    let fused = build_graph(
        &GraphSpec::training(cfg(), 128)
            .with_mbs(8)
            .with_fused_merges(true),
    );
    let split = build_graph(
        &GraphSpec::training(cfg(), 128)
            .with_mbs(8)
            .with_split_cells(true),
    );

    // Print the simulated effect once (criterion measures sim runtime,
    // the makespans are the scientific result).
    let t_free = simulate(&free, &SimConfig::xeon(24)).makespan;
    let t_barred = simulate(&barred, &SimConfig::xeon(24)).makespan;
    let t_fifo = simulate(
        &free,
        &SimConfig::xeon(24).with_policy(SchedulerPolicy::Fifo),
    )
    .makespan;
    let t_mbs1 = simulate(&mbs1, &SimConfig::xeon(24)).makespan;
    let t_fused = simulate(&fused, &SimConfig::xeon(24)).makespan;
    let t_split = simulate(&split, &SimConfig::xeon(24)).makespan;
    eprintln!("ablation makespans @24 cores (s):");
    eprintln!("  barrier-free mbs:8       {t_free:.3}");
    eprintln!(
        "  per-layer barriers mbs:8 {t_barred:.3}  ({:.2}x slower)",
        t_barred / t_free
    );
    eprintln!(
        "  FIFO scheduler mbs:8     {t_fifo:.3}  ({:.2}x slower)",
        t_fifo / t_free
    );
    eprintln!(
        "  mbs:1 (model-par only)   {t_mbs1:.3}  ({:.2}x slower)",
        t_mbs1 / t_free
    );
    eprintln!(
        "  fused merges mbs:8       {t_fused:.3}  ({:.2}x)",
        t_fused / t_free
    );
    eprintln!(
        "  gate-split tasks mbs:8   {t_split:.3}  ({:.2}x, {} vs {} tasks)",
        t_split / t_free,
        split.len(),
        free.len()
    );

    group.bench_function("barrier_free", |b| {
        b.iter(|| black_box(simulate(&free, &SimConfig::xeon(24)).makespan))
    });
    group.bench_function("per_layer_barriers", |b| {
        b.iter(|| black_box(simulate(&barred, &SimConfig::xeon(24)).makespan))
    });
    group.bench_function("fifo_scheduler", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &free,
                    &SimConfig::xeon(24).with_policy(SchedulerPolicy::Fifo),
                )
                .makespan,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
