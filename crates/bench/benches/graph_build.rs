//! Criterion benchmarks of static task-graph generation — the cost of
//! "unrolling" a BRNN into its dependency graph (Algorithms 1–3), which
//! B-Par pays once per batch shape.

use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn config(layers: usize, seq: usize) -> BrnnConfig {
    BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers,
        seq_len: seq,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    }
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for &(layers, seq, mbs) in &[(6usize, 100usize, 1usize), (6, 100, 8), (12, 100, 8)] {
        let spec = GraphSpec::training(config(layers, seq), 128).with_mbs(mbs);
        let tasks = build_graph(&spec).len();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}L_seq{seq}_mbs{mbs}_{tasks}tasks")),
            &spec,
            |b, spec| b.iter(|| black_box(build_graph(spec).len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
