//! # bpar-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§IV). One binary per experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table3` | Table III — BLSTM training times and speed-ups |
//! | `table4` | Table IV — BGRU training times and speed-ups |
//! | `fig3` | Fig. 3 — B-Par speed-up vs mbs and core count |
//! | `fig4` | Fig. 4 — Keras / B-Seq / PyTorch / B-Par vs core count |
//! | `fig5` | Fig. 5 — batch-size / hidden-size sweep |
//! | `fig6` | Fig. 6 — layer-count sweep, training and inference |
//! | `fig7` | Fig. 7 — locality-aware scheduling: IPC / L3-MPKI / time |
//! | `fig8` | Fig. 8 — next-character prediction (many-to-many) |
//! | `granularity` | §IV-B task-granularity statistics |
//! | `memory` | §IV-B working-set / concurrency accounting |
//! | `accuracy` | §III accuracy-preservation check on live executors |
//! | `sensitivity` | calibration-robustness sweep of the cost model |
//! | `trace` | Chrome-trace timelines of the schedules |
//!
//! Every binary prints a side-by-side table of the paper's measurement
//! and ours, and writes a JSON record into `results/`. The *absolute*
//! numbers come from the discrete-event simulator calibrated per
//! DESIGN.md §2; the deliverable is the *shape*: who wins, by what
//! factor, and where the crossovers fall.

pub mod paper;
pub mod tables;

use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec, Phase as GraphPhase};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::graph::TaskGraph;
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig, SimResult};
use serde::Serialize;
use std::path::PathBuf;

pub use bpar_baselines::{CpuFramework, GpuFramework, Phase};

/// A model configuration row of Tables III/IV.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TableConfig {
    /// Input feature width.
    pub input: usize,
    /// Hidden units.
    pub hidden: usize,
    /// Batch rows.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
}

/// The twelve model configurations of Tables III and IV, in row order.
pub fn table_configs() -> Vec<TableConfig> {
    let c = |input, hidden, batch, seq| TableConfig {
        input,
        hidden,
        batch,
        seq,
    };
    vec![
        c(64, 256, 128, 100),
        c(256, 256, 128, 100),
        c(1024, 256, 128, 100),
        c(256, 256, 1, 2),
        c(256, 256, 1, 10),
        c(256, 256, 1, 100),
        c(64, 256, 256, 100),
        c(64, 1024, 256, 100),
        c(256, 256, 256, 100),
        c(256, 1024, 256, 100),
        c(1024, 256, 256, 100),
        c(1024, 1024, 256, 100),
    ]
}

/// Builds the 6-layer many-to-one BRNN config for a table row.
pub fn brnn_config(cell: CellKind, tc: &TableConfig, layers: usize) -> BrnnConfig {
    BrnnConfig {
        cell,
        input_size: tc.input,
        hidden_size: tc.hidden,
        layers,
        seq_len: tc.seq,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    }
}

/// Simulated B-Par batch time (seconds) at a fixed configuration.
pub fn bpar_time(cfg: &BrnnConfig, batch: usize, cores: usize, mbs: usize, phase: Phase) -> f64 {
    bpar_result(
        cfg,
        batch,
        cores,
        mbs,
        phase,
        SchedulerPolicy::LocalityAware,
    )
    .makespan
}

/// Full simulation result for B-Par.
pub fn bpar_result(
    cfg: &BrnnConfig,
    batch: usize,
    cores: usize,
    mbs: usize,
    phase: Phase,
    policy: SchedulerPolicy,
) -> SimResult {
    let mut spec = GraphSpec::training(*cfg, batch).with_mbs(mbs);
    if phase == Phase::Inference {
        spec.phase = GraphPhase::Inference;
    }
    let g = build_graph(&spec);
    simulate(&g, &SimConfig::xeon(cores).with_policy(policy))
}

/// Best simulated B-Par time over the paper's mbs sweep {1,2,4,6,8,10,12}
/// at a fixed core count. Returns `(seconds, mbs)`.
pub fn bpar_best(cfg: &BrnnConfig, batch: usize, cores: usize, phase: Phase) -> (f64, usize) {
    [1usize, 2, 4, 6, 8, 10, 12, 16, 24]
        .iter()
        .filter(|&&m| m <= batch.max(1))
        .map(|&m| (bpar_time(cfg, batch, cores, m, phase), m))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty mbs sweep")
}

/// B-Seq task graph: `mbs` fully serial per-replica chains (data
/// parallelism only — each mini-batch runs the whole network
/// sequentially, §IV-A).
pub fn bseq_graph(cfg: &BrnnConfig, batch: usize, mbs: usize, phase: Phase) -> TaskGraph {
    let chunks = split_rows(batch, mbs);
    let mut g = TaskGraph::new();
    for &rows in &chunks {
        let mut spec = GraphSpec::training(*cfg, rows);
        if phase == Phase::Inference {
            spec.phase = GraphPhase::Inference;
        }
        let sub = build_graph(&spec);
        // Chain the replica's tasks in creation (i.e. sequential
        // execution) order.
        let mut prev: Option<usize> = None;
        for node in sub.nodes() {
            let preds: Vec<usize> = prev.into_iter().collect();
            let id = g.add_task_with_preds(node.clone(), &preds);
            prev = Some(id.index());
        }
    }
    g
}

/// Simulated B-Seq batch time at a fixed configuration.
pub fn bseq_time(cfg: &BrnnConfig, batch: usize, cores: usize, mbs: usize, phase: Phase) -> f64 {
    let g = bseq_graph(cfg, batch, mbs, phase);
    simulate(&g, &SimConfig::xeon(cores)).makespan
}

/// Best simulated B-Seq time over the mbs sweep at a fixed core count.
pub fn bseq_best(cfg: &BrnnConfig, batch: usize, cores: usize, phase: Phase) -> (f64, usize) {
    [1usize, 2, 4, 6, 8, 10, 12, 16, 24]
        .iter()
        .filter(|&&m| m <= batch.max(1))
        .map(|&m| (bseq_time(cfg, batch, cores, m, phase), m))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty mbs sweep")
}

fn split_rows(rows: usize, mbs: usize) -> Vec<usize> {
    let n = mbs.min(rows).max(1);
    let base = rows / n;
    let rem = rows % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// Renders an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Writes a JSON record under `results/`.
pub fn write_json(name: &str, value: &impl Serialize) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    println!("\n[written {}]", path.display());
}

/// `results/` at the workspace root, located from this crate's manifest
/// directory so the binaries work regardless of the invocation cwd.
fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(seconds: f64) -> String {
    if seconds >= 10.0 {
        format!("{:.1}", seconds * 1e3)
    } else {
        format!("{:.2}", seconds * 1e3)
    }
}

/// Formats an optional time (empty cell = hung run, like the paper).
pub fn ms_opt(seconds: Option<f64>) -> String {
    seconds.map(ms).unwrap_or_else(|| "-".into())
}

/// Formats a speed-up factor.
pub fn speedup(base: f64, ours: f64) -> String {
    format!("{:.2}x", base / ours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_table_rows() {
        assert_eq!(table_configs().len(), 12);
    }

    #[test]
    fn split_rows_covers() {
        assert_eq!(split_rows(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_rows(1, 8), vec![1]);
    }

    #[test]
    fn bseq_graph_is_serial_per_replica() {
        let tc = TableConfig {
            input: 8,
            hidden: 8,
            batch: 8,
            seq: 4,
        };
        let cfg = brnn_config(CellKind::Lstm, &tc, 2);
        let g = bseq_graph(&cfg, 8, 2, Phase::Training);
        g.validate().unwrap();
        // Two chains → max width 2.
        assert_eq!(g.max_width(), 2);
    }

    #[test]
    fn bseq_does_not_scale_past_mbs() {
        let tc = TableConfig {
            input: 32,
            hidden: 32,
            batch: 16,
            seq: 10,
        };
        let cfg = brnn_config(CellKind::Lstm, &tc, 2);
        let t4_4 = bseq_time(&cfg, 16, 4, 4, Phase::Training);
        let t16_4 = bseq_time(&cfg, 16, 16, 4, Phase::Training);
        // Extra cores beyond mbs buy nothing.
        assert!((t16_4 / t4_4 - 1.0).abs() < 0.05, "{t4_4} vs {t16_4}");
    }

    #[test]
    fn bpar_beats_bseq_at_same_mbs() {
        let tc = TableConfig {
            input: 64,
            hidden: 64,
            batch: 32,
            seq: 20,
        };
        let cfg = brnn_config(CellKind::Lstm, &tc, 4);
        let bp = bpar_time(&cfg, 32, 16, 4, Phase::Training);
        let bs = bseq_time(&cfg, 32, 16, 4, Phase::Training);
        assert!(
            bp < bs * 0.7,
            "B-Par {bp} should clearly beat B-Seq {bs} (model parallelism)"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.932), "932.00");
        assert_eq!(ms(28.5713), "28571.3");
        assert_eq!(ms_opt(None), "-");
        assert_eq!(speedup(2.0, 1.0), "2.00x");
    }
}
