//! Cost-model sensitivity analysis: are the reproduction's headline
//! conclusions calibration artifacts?
//!
//! Sweeps the simulator's main calibration constants over wide ranges
//! (±2× around the defaults) and checks, at every point, the three shape
//! conclusions of the paper:
//!
//! 1. barrier-free B-Par beats the per-layer-barrier schedule,
//! 2. combined model+data parallelism (mbs:8) beats data-only B-Seq,
//! 3. locality-aware scheduling moves less memory, and — whenever the
//!    cost model gives cold kernels a ≥20% penalty (the cache-sensitive
//!    regime the paper's measured 20% batch-time win places its machine
//!    in) — also wins on batch time.
//!
//! The locality *time* advantage is genuinely conditional: with an almost
//! cache-insensitive kernel model (cold penalty 1.1) affinity's slight
//! load imbalance is no longer paid back, and FIFO ties or wins by a few
//! percent. The sweep shows exactly where that boundary lies; everything
//! else holds at every point. A conclusion flipping inside its declared
//! regime is printed as a violation and the run asserts there are none.
//!
//! Usage: `cargo run --release -p bpar-bench --bin sensitivity`

use bpar_bench::{bseq_graph, print_table, write_json, Phase};
use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, CostModel, Machine, SimConfig};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    flops_per_core: f64,
    mem_bw: f64,
    overhead_us: f64,
    cold_penalty: f64,
    barrier_gap: f64,
    bpar_vs_bseq: f64,
    locality_gain: f64,
    traffic_gain: f64,
}

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let free = build_graph(&GraphSpec::training(cfg, 128).with_mbs(8));
    let barred = build_graph(
        &GraphSpec::training(cfg, 128)
            .with_mbs(8)
            .with_barriers(true),
    );
    let bseq = bseq_graph(&cfg, 128, 8, Phase::Training);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut violations = 0usize;

    for flops_scale in [0.5f64, 1.0, 2.0] {
        for bw_scale in [0.5f64, 1.0, 2.0] {
            for overhead_us in [10.0f64, 30.0, 120.0] {
                for cold_penalty in [1.1f64, 1.45, 1.9] {
                    let machine = Machine {
                        flops_per_core: 30e9 * flops_scale,
                        mem_bw_per_socket: 100e9 * bw_scale,
                        ..Machine::xeon_8160()
                    };
                    let cost = CostModel {
                        per_task_overhead: overhead_us * 1e-6,
                        cold_compute_penalty: cold_penalty,
                        same_socket_compute_penalty: 1.0 + (cold_penalty - 1.0) * 0.5,
                        ..CostModel::default()
                    };
                    let mk = |cores: usize, policy| SimConfig {
                        machine,
                        cost,
                        ..SimConfig::xeon(cores).with_policy(policy)
                    };

                    let t_free = simulate(&free, &mk(24, SchedulerPolicy::LocalityAware));
                    let t_barred = simulate(&barred, &mk(24, SchedulerPolicy::LocalityAware));
                    let t_bseq = simulate(&bseq, &mk(24, SchedulerPolicy::LocalityAware));
                    let t_fifo = simulate(&free, &mk(8, SchedulerPolicy::Fifo));
                    let t_loc = simulate(&free, &mk(8, SchedulerPolicy::LocalityAware));

                    let p = SweepPoint {
                        flops_per_core: machine.flops_per_core,
                        mem_bw: machine.mem_bw_per_socket,
                        overhead_us,
                        cold_penalty,
                        barrier_gap: t_barred.makespan / t_free.makespan,
                        bpar_vs_bseq: t_bseq.makespan / t_free.makespan,
                        locality_gain: t_fifo.makespan / t_loc.makespan,
                        traffic_gain: t_fifo.total_miss_bytes() / t_loc.total_miss_bytes(),
                    };
                    let cache_sensitive = cold_penalty >= 1.2;
                    let ok = p.barrier_gap > 1.2
                        && p.bpar_vs_bseq > 1.3
                        && p.traffic_gain > 1.0
                        && (!cache_sensitive || p.locality_gain > 0.97);
                    if !ok {
                        violations += 1;
                    }
                    rows.push(vec![
                        format!("{:.0}G", machine.flops_per_core / 1e9),
                        format!("{:.0}G", machine.mem_bw_per_socket / 1e9),
                        format!("{overhead_us:.0}"),
                        format!("{cold_penalty:.2}"),
                        format!("{:.2}x", p.barrier_gap),
                        format!("{:.2}x", p.bpar_vs_bseq),
                        format!("{:.2}x", p.locality_gain),
                        format!("{:.2}x", p.traffic_gain),
                        if ok { "ok".into() } else { "VIOLATION".into() },
                    ]);
                    points.push(p);
                    eprint!(".");
                }
            }
        }
    }
    eprintln!();

    print_table(
        "Cost-model sensitivity: shape conclusions across 81 calibrations",
        &[
            "flop/s", "bw", "ovh(us)", "cold", "barrier", "vs B-Seq", "locality", "traffic", "",
        ],
        &rows,
    );
    println!(
        "\n{} of {} calibration points preserve every shape conclusion.",
        points.len() - violations,
        points.len()
    );
    assert_eq!(
        violations, 0,
        "shape conclusions must be calibration-robust"
    );
    write_json("sensitivity", &points);
}
