//! Measures the full `bpar analyze` soundness pipeline on small configs.
//!
//! Each row runs the complete analysis — static shape checks, clause
//! validation, the happens-before race engine, lock discipline, and the
//! schedule prong (exhaustive exploration under the task budget,
//! fingerprint fuzzing above it) — and reports wall time plus the
//! exploration statistics. Seeded-bug rows double as a regression
//! record: the `codes` column must keep showing exactly the designated
//! detector's finding code (`BPV301` for the dropped edge, `BPV401` for
//! the cross-epoch alias).
//!
//! Usage: `cargo run --release -p bpar-bench --bin verify_hb`

use bpar_bench::{print_table, write_json};
use bpar_core::analyze::{analyze, AnalyzeOptions, SeedBug};
use bpar_core::model::{BrnnConfig, ModelKind};
use serde::Serialize;
use std::collections::BTreeSet;
use std::time::Instant;

#[derive(Serialize)]
struct VerifyRow {
    name: String,
    tasks: usize,
    edges: usize,
    analyze_ms: f64,
    explored_schedules: usize,
    pruned_branches: usize,
    explore_complete: bool,
    errors: usize,
    codes: Vec<String>,
}

fn small(kind: ModelKind) -> BrnnConfig {
    BrnnConfig {
        layers: 1,
        seq_len: 2,
        input_size: 4,
        hidden_size: 4,
        output_size: 3,
        kind,
        ..BrnnConfig::default()
    }
}

fn run(name: &str, opts: &AnalyzeOptions) -> VerifyRow {
    let t0 = Instant::now();
    let report = analyze(opts);
    let analyze_ms = t0.elapsed().as_secs_f64() * 1e3;

    let plan = report
        .graphs
        .iter()
        .find(|g| g.name == "static-plan")
        .expect("static-plan section");
    let explore = report.graphs.iter().find(|g| g.name == "schedule-explore");
    let codes: BTreeSet<String> = report
        .graphs
        .iter()
        .flat_map(|g| g.findings.iter().map(|f| f.code.clone()))
        .collect();

    VerifyRow {
        name: name.into(),
        tasks: plan.metrics.tasks,
        edges: plan.metrics.edges,
        analyze_ms,
        explored_schedules: explore.map_or(0, |g| g.metrics.explored_schedules),
        pruned_branches: explore.map_or(0, |g| g.metrics.pruned_branches),
        explore_complete: explore.is_some_and(|g| g.metrics.explore_complete == 1),
        errors: report.errors,
        codes: codes.into_iter().collect(),
    }
}

fn main() {
    let rows = vec![
        run(
            "clean-inference-small",
            &AnalyzeOptions {
                config: small(ModelKind::ManyToOne),
                train: false,
                ..AnalyzeOptions::default()
            },
        ),
        run(
            "clean-train-fig2",
            &AnalyzeOptions {
                train: true,
                ..AnalyzeOptions::default()
            },
        ),
        run(
            "clean-inference-fig2",
            &AnalyzeOptions {
                train: false,
                explore_max_tasks: 32,
                ..AnalyzeOptions::default()
            },
        ),
        run(
            "seeded-dropped-edge",
            &AnalyzeOptions {
                config: small(ModelKind::ManyToMany),
                train: true,
                seed_bug: Some(SeedBug::DroppedEdge),
                ..AnalyzeOptions::default()
            },
        ),
        run(
            "seeded-cross-epoch-race",
            &AnalyzeOptions {
                config: small(ModelKind::ManyToOne),
                train: false,
                seed_bug: Some(SeedBug::CrossEpochRace),
                ..AnalyzeOptions::default()
            },
        ),
    ];

    print_table(
        "soundness pipeline cost and coverage (rows=4, seed 7)",
        &[
            "config", "tasks", "edges", "ms", "explored", "pruned", "complete", "errors", "codes",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.tasks.to_string(),
                    r.edges.to_string(),
                    format!("{:.1}", r.analyze_ms),
                    r.explored_schedules.to_string(),
                    r.pruned_branches.to_string(),
                    r.explore_complete.to_string(),
                    r.errors.to_string(),
                    r.codes.join(","),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json("verify_hb_small", &rows);
}
