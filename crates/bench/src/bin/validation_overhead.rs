//! Measures the cost of dependency-clause validation mode.
//!
//! The access recorder is strictly opt-in: with no recorder installed
//! every `record_read`/`record_write` call in the task bodies is one
//! relaxed atomic load. This bin quantifies both sides:
//!
//! * **off** — steady-state plan replays with validation disabled (the
//!   normal production path, including the always-compiled-in hooks);
//! * **on** — the same replays with an [`AccessRecorder`] installed and
//!   drained every batch (the `bpar analyze` clause-validation path).
//!
//! Usage: `cargo run --release -p bpar-bench --bin validation_overhead`

use bpar_bench::{print_table, write_json};
use bpar_core::exec::{Executor, Target, TaskGraphExec};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_core::optim::Sgd;
use bpar_runtime::AccessRecorder;
use bpar_tensor::init;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct OverheadRow {
    phase: String,
    validation: String,
    batches: usize,
    ms_per_batch: f64,
    events_per_batch: usize,
    overhead_pct: f64,
}

fn main() {
    let config = BrnnConfig {
        input_size: 32,
        hidden_size: 64,
        layers: 4,
        seq_len: 20,
        output_size: 8,
        kind: ModelKind::ManyToOne,
        ..BrnnConfig::default()
    };
    let rows = 16;
    let batch: Vec<_> = (0..config.seq_len)
        .map(|t| init::uniform::<f64>(rows, config.input_size, -1.0, 1.0, t as u64))
        .collect();
    let target = Target::Classes((0..rows).map(|r| r % config.output_size).collect());
    let reps = 30;
    let mut rows_out = Vec::new();

    for train in [false, true] {
        let phase = if train { "training" } else { "inference" };
        let mut model: Brnn<f64> = Brnn::new(config, 7);
        let exec = TaskGraphExec::new(2);
        let mut opt = Sgd::new(0.0); // lr 0: keep weights (and plans) stable

        let mut run_batch = |model: &mut Brnn<f64>| {
            if train {
                exec.train_batch(model, &batch, &target, &mut opt);
            } else {
                exec.forward(model, &batch);
            }
        };

        // Warm the plan cache so both measurements see pure replays.
        for _ in 0..3 {
            run_batch(&mut model);
        }

        let t0 = Instant::now();
        for _ in 0..reps {
            run_batch(&mut model);
        }
        let off_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

        let recorder = Arc::new(AccessRecorder::new());
        exec.runtime().set_validation(Some(recorder.clone()));
        run_batch(&mut model); // first recorded replay outside the timing
        let mut events = recorder.take_events().len();
        let t1 = Instant::now();
        for _ in 0..reps {
            run_batch(&mut model);
            events = recorder.take_events().len();
        }
        let on_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;
        exec.runtime().set_validation(None);

        rows_out.push(OverheadRow {
            phase: phase.into(),
            validation: "off".into(),
            batches: reps,
            ms_per_batch: off_ms,
            events_per_batch: 0,
            overhead_pct: 0.0,
        });
        rows_out.push(OverheadRow {
            phase: phase.into(),
            validation: "on".into(),
            batches: reps,
            ms_per_batch: on_ms,
            events_per_batch: events,
            overhead_pct: (on_ms / off_ms - 1.0) * 100.0,
        });
    }

    print_table(
        "clause-validation overhead (4-layer BLSTM, seq 20, batch 16, 2 workers)",
        &[
            "phase",
            "validation",
            "ms/batch",
            "events/batch",
            "overhead",
        ],
        &rows_out
            .iter()
            .map(|r| {
                vec![
                    r.phase.clone(),
                    r.validation.clone(),
                    format!("{:.2}", r.ms_per_batch),
                    r.events_per_batch.to_string(),
                    format!("{:+.1}%", r.overhead_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json("validation_overhead", &rows_out);
}
