//! Reproduces Table IV: BGRU training times and B-Par speed-ups.
//!
//! Usage: `cargo run --release -p bpar-bench --bin table4`

use bpar_bench::paper::TABLE4;
use bpar_bench::tables::run_table;
use bpar_core::cell::CellKind;

fn main() {
    run_table(
        CellKind::Gru,
        &TABLE4,
        "table4",
        "Table IV (BGRU, 6 layers)",
    );
}
