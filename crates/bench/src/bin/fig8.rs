//! Reproduces Fig. 8: next-character prediction on the (synthetic)
//! Wikipedia corpus with many-to-many BRNNs — single-batch training time
//! of B-Par vs Keras for BLSTM and BGRU, layer counts {2, 4, 8, 12},
//! batch sizes {128, 256} and hidden sizes {128, 256}.
//!
//! Expected shape (paper §IV-C): B-Par achieves maximum speed-ups of
//! 1.54×, 2.17×, 2.38× and 2.44× for 2, 4, 8 and 12 layers.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig8`

use bpar_bench::{bpar_best, paper, print_table, write_json, CpuFramework, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_data::wikitext::VOCAB_SIZE;
use bpar_sim::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Point {
    cell: String,
    layers: usize,
    hidden: usize,
    batch: usize,
    keras: f64,
    bpar: f64,
    speedup: f64,
}

fn main() {
    let machine = Machine::xeon_8160();
    let keras = CpuFramework::keras();
    let mut points = Vec::new();

    for cell in [CellKind::Lstm, CellKind::Gru] {
        let mut rows = Vec::new();
        for layers in [2usize, 4, 8, 12] {
            for hidden in [128usize, 256] {
                for batch in [128usize, 256] {
                    let cfg = BrnnConfig {
                        cell,
                        // One-hot characters in, next-character logits out.
                        input_size: VOCAB_SIZE,
                        hidden_size: hidden,
                        layers,
                        seq_len: 100,
                        output_size: VOCAB_SIZE,
                        merge: MergeMode::Sum,
                        kind: ModelKind::ManyToMany,
                    };
                    let (k, _) = keras.best_batch_time(&cfg, batch, &machine, Phase::Training);
                    let (bp, _) = bpar_best(&cfg, batch, 48, Phase::Training);
                    rows.push(vec![
                        format!("{layers}L/h{hidden}/b{batch}"),
                        format!("{k:.3}"),
                        format!("{bp:.3}"),
                        format!("{:.2}x", k / bp),
                    ]);
                    points.push(Fig8Point {
                        cell: format!("{cell:?}"),
                        layers,
                        hidden,
                        batch,
                        keras: k,
                        bpar: bp,
                        speedup: k / bp,
                    });
                    eprint!(".");
                }
            }
        }
        eprintln!();
        print_table(
            &format!("Fig. 8 ({cell:?}, many-to-many next-char prediction): time per batch (s)"),
            &["config", "Keras", "B-Par", "speed-up"],
            &rows,
        );
    }

    println!("\nMax B-Par speed-up by layer count (both cells), ours vs paper:");
    for (layers, paper_speedup) in paper::FIG8_SPEEDUPS {
        let ours = points
            .iter()
            .filter(|p| p.layers == layers)
            .map(|p| p.speedup)
            .fold(0.0, f64::max);
        println!("  {layers:>2} layers: {ours:.2}x (paper {paper_speedup:.2}x)");
    }
    write_json("fig8", &points);
}
