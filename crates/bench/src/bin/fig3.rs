//! Reproduces Fig. 3: B-Par speed-up against B-Par-mbs:1-on-1-core for
//! mini-batch counts {1, 2, 4, 6, 8, 10, 12} across core counts
//! {1, 2, 4, 8, 16, 24, 32, 48}, on 8- and 12-layer BLSTMs (seq 100,
//! input 256).
//!
//! Expected shape (paper §IV-B): speed-up grows with `mbs` (each replica
//! adds two direction-chains of model parallelism); small-`mbs`
//! configurations saturate early and suffer NUMA effects past one socket,
//! while mbs ≥ 8 keeps improving beyond 24 cores. Best configuration:
//! mbs:8–12 on 48 cores.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig3`

use bpar_bench::{bpar_time, print_table, write_json, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Point {
    layers: usize,
    cores: usize,
    mbs: usize,
    seconds: f64,
    speedup: f64,
}

fn main() {
    let cores_axis = [1usize, 2, 4, 8, 16, 24, 32, 48];
    let mbs_axis = [1usize, 2, 4, 6, 8, 10, 12];
    let batch = 120; // divisible by every mbs in the sweep
    let mut points: Vec<Fig3Point> = Vec::new();

    for layers in [8usize, 12] {
        let cfg = BrnnConfig {
            cell: CellKind::Lstm,
            input_size: 256,
            hidden_size: 256,
            layers,
            seq_len: 100,
            output_size: 11,
            merge: MergeMode::Sum,
            kind: ModelKind::ManyToOne,
        };
        let baseline = bpar_time(&cfg, batch, 1, 1, Phase::Training);
        let mut rows = Vec::new();
        for &cores in &cores_axis {
            let mut row = vec![cores.to_string()];
            for &mbs in &mbs_axis {
                let t = bpar_time(&cfg, batch, cores, mbs, Phase::Training);
                row.push(format!("{:.2}", baseline / t));
                points.push(Fig3Point {
                    layers,
                    cores,
                    mbs,
                    seconds: t,
                    speedup: baseline / t,
                });
            }
            rows.push(row);
            eprint!(".");
        }
        eprintln!();
        print_table(
            &format!(
                "Fig. 3 ({layers}-layer BLSTM): speed-up vs B-Par-mbs:1 on 1 core \
                 (baseline {:.2} s)",
                baseline
            ),
            &[
                "cores", "mbs:1", "mbs:2", "mbs:4", "mbs:6", "mbs:8", "mbs:10", "mbs:12",
            ],
            &rows,
        );
    }

    // Shape checks against the paper's described behaviour.
    let best = points
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .unwrap();
    println!(
        "\nBest configuration: mbs:{} on {} cores, speed-up {:.2}x \
         (paper: best at mbs:8 with all 48 cores).",
        best.mbs, best.cores, best.speedup
    );
    let at = |layers, cores, mbs| {
        points
            .iter()
            .find(|p| p.layers == layers && p.cores == cores && p.mbs == mbs)
            .unwrap()
            .speedup
    };
    println!(
        "mbs:8 keeps gaining 24->48 cores: {:.2}x -> {:.2}x (paper: improves); \
         mbs:2 stalls: {:.2}x -> {:.2}x (paper: degrades/stalls from NUMA).",
        at(8, 24, 8),
        at(8, 48, 8),
        at(8, 24, 2),
        at(8, 48, 2)
    );
    write_json("fig3", &points);
}
