//! Reproduces the §IV-B task-granularity experiment: a BLSTM with
//! seq 100, batch 128, input 64, hidden 512.
//!
//! Paper numbers: 368,240 tasks in total (over a training run), average
//! LSTM-task working set 4.71 MB, task durations 272.8 µs – 315 ms with a
//! 13.05 ms average, and task creation/scheduling/synchronisation
//! overhead at least 10× smaller than useful task time.
//!
//! Usage: `cargo run --release -p bpar-bench --bin granularity`

use bpar_bench::{bpar_result, paper, print_table, write_json, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct GranularityResult {
    tasks_per_batch: usize,
    batches_for_paper_count: f64,
    lstm_ws_mb: f64,
    min_task_us: f64,
    avg_task_us: f64,
    max_task_us: f64,
    overhead_ratio: f64,
}

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 64,
        hidden_size: 512,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let r = bpar_result(
        &cfg,
        128,
        24,
        1,
        Phase::Training,
        SchedulerPolicy::LocalityAware,
    );

    let durations_us: Vec<f64> = r.records.iter().map(|t| t.duration() * 1e6).collect();
    let min = durations_us.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = durations_us.iter().cloned().fold(0.0, f64::max);
    let avg = durations_us.iter().sum::<f64>() / durations_us.len() as f64;

    // Working set of the forward LSTM cell tasks specifically (the paper
    // quotes the per-task LSTM working set).
    let lstm_ws: Vec<f64> = r
        .records
        .iter()
        .filter(|t| t.label == "cell_fwd" || t.label == "cell_rev")
        .map(|t| t.working_set_bytes as f64 / (1024.0 * 1024.0))
        .collect();
    let lstm_ws_mb = lstm_ws.iter().sum::<f64>() / lstm_ws.len() as f64;

    // Overhead: 30 µs of creation/scheduling per task vs useful time.
    let overhead = 30e-6 * r.records.len() as f64;
    let useful: f64 = r.records.iter().map(|t| t.duration()).sum();
    let overhead_ratio = overhead / useful;

    let tasks_per_batch = r.records.len();
    let batches = paper::granularity::TOTAL_TASKS as f64 / tasks_per_batch as f64;

    let rows = vec![
        vec![
            "tasks (one training batch)".into(),
            tasks_per_batch.to_string(),
            format!(
                "{} total = ~{batches:.0} batches",
                paper::granularity::TOTAL_TASKS
            ),
        ],
        vec![
            "avg LSTM-task working set (MB)".into(),
            format!("{lstm_ws_mb:.2}"),
            format!("{:.2}", paper::granularity::AVG_WORKING_SET_MB),
        ],
        vec![
            "min task duration (us)".into(),
            format!("{min:.1}"),
            format!("{:.1}", paper::granularity::MIN_TASK_US),
        ],
        vec![
            "avg task duration (us)".into(),
            format!("{avg:.1}"),
            format!("{:.1}", paper::granularity::AVG_TASK_US),
        ],
        vec![
            "max task duration (us)".into(),
            format!("{max:.1}"),
            format!("{:.1}", paper::granularity::MAX_TASK_US),
        ],
        vec![
            "overhead / useful time".into(),
            format!("{overhead_ratio:.3}"),
            "< 0.1".into(),
        ],
    ];
    print_table(
        "Task granularity (BLSTM, seq 100, batch 128, input 64, hidden 512)",
        &["metric", "ours", "paper"],
        &rows,
    );
    assert!(
        overhead_ratio < 0.1,
        "overhead must stay 10x below task time"
    );

    write_json(
        "granularity",
        &GranularityResult {
            tasks_per_batch,
            batches_for_paper_count: batches,
            lstm_ws_mb,
            min_task_us: min,
            avg_task_us: avg,
            max_task_us: max,
            overhead_ratio,
        },
    );
}
