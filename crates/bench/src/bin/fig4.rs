//! Reproduces Fig. 4: batch training time of Keras, B-Seq, PyTorch and
//! B-Par on core counts {1, 2, 4, 8, 16, 24, 32, 48} for an 8-layer
//! BLSTM (seq 100, input 256, mbs:8 for B-Seq/B-Par).
//!
//! Expected shape (paper §IV-B): B-Seq stops scaling at 8 cores (it only
//! exposes mbs software threads); Keras tracks B-Seq up to ~16 cores then
//! suffers NUMA; PyTorch is worst throughout; B-Par keeps scaling to 48
//! cores and is fastest beyond 16 cores.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig4`

use bpar_bench::{bpar_time, bseq_time, print_table, write_json, CpuFramework, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Point {
    cores: usize,
    keras: f64,
    bseq: f64,
    pytorch: f64,
    bpar: f64,
}

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 8,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let batch = 128;
    let machine = Machine::xeon_8160();
    let keras = CpuFramework::keras();
    let pytorch = CpuFramework::pytorch();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for cores in [1usize, 2, 4, 8, 16, 24, 32, 48] {
        let p = Fig4Point {
            cores,
            keras: keras.batch_time(&cfg, batch, cores, &machine, Phase::Training),
            bseq: bseq_time(&cfg, batch, cores, 8, Phase::Training),
            pytorch: pytorch.batch_time(&cfg, batch, cores, &machine, Phase::Training),
            bpar: bpar_time(&cfg, batch, cores, 8, Phase::Training),
        };
        rows.push(vec![
            cores.to_string(),
            format!("{:.2}", p.keras),
            format!("{:.2}", p.bseq),
            format!("{:.2}", p.pytorch),
            format!("{:.2}", p.bpar),
        ]);
        points.push(p);
        eprint!(".");
    }
    eprintln!();
    print_table(
        "Fig. 4 (8-layer BLSTM, batch 128): training time per batch (s)",
        &["cores", "Keras", "B-Seq mbs:8", "PyTorch", "B-Par mbs:8"],
        &rows,
    );

    let at = |cores| points.iter().find(|p| p.cores == cores).unwrap();
    let bseq8 = at(8).bseq;
    let bseq48 = at(48).bseq;
    println!(
        "\nB-Seq stops scaling past 8 cores: {:.2}s @8 vs {:.2}s @48 \
         (paper: flat beyond mbs cores).",
        bseq8, bseq48
    );
    println!(
        "B-Par best: {:.2}s @48 cores; B-Seq best: {:.2}s — B-Par/B-Seq = {:.2}x \
         (paper: 0.44s vs 0.89s ≈ 2x from model parallelism).",
        at(48).bpar,
        points.iter().map(|p| p.bseq).fold(f64::INFINITY, f64::min),
        bseq48 / at(48).bpar,
    );
    println!(
        "Crossover: at 16+ cores B-Par leads Keras by {:.2}x (paper: grows with cores).",
        at(48).keras / at(48).bpar
    );
    write_json("fig4", &points);
}
