//! Exports Chrome-trace timelines (open in `chrome://tracing` or
//! Perfetto) for visual inspection of the schedules:
//!
//! * `results/trace_bpar.json` — barrier-free B-Par on 8 simulated cores,
//! * `results/trace_barrier.json` — the per-layer-barrier schedule,
//! * `results/trace_live.json` — a live run on this machine's cores.
//!
//! The barrier trace shows the characteristic "staircase" (one direction
//! at a time, gaps at layer boundaries); the B-Par trace shows both
//! directions of all replicas interleaved with no gaps.
//!
//! Usage: `cargo run --release -p bpar-bench --bin trace`

use bpar_core::cell::CellKind;
use bpar_core::exec::{Executor, Target, TaskGraphExec};
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_core::optim::Sgd;
use bpar_runtime::trace::write_chrome_trace;
use bpar_sim::{simulate, SimConfig};
use bpar_tensor::init;
use std::path::PathBuf;

fn main() {
    let results = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");

    // Simulated schedules on the paper-scale model.
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 4,
        seq_len: 30,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let spec = GraphSpec::training(cfg, 64).with_mbs(4);
    let free = simulate(&build_graph(&spec), &SimConfig::xeon(8));
    let barred = simulate(&build_graph(&spec.with_barriers(true)), &SimConfig::xeon(8));
    write_chrome_trace(
        &results.join("trace_bpar.json"),
        "B-Par (barrier-free)",
        &free.records,
    )
    .expect("write trace");
    write_chrome_trace(
        &results.join("trace_barrier.json"),
        "Per-layer barriers",
        &barred.records,
    )
    .expect("write trace");
    println!(
        "simulated: barrier-free {:.3}s vs barriers {:.3}s on 8 cores",
        free.makespan, barred.makespan
    );

    // A live run on this machine.
    let small = BrnnConfig {
        input_size: 16,
        hidden_size: 32,
        layers: 3,
        seq_len: 10,
        output_size: 4,
        ..cfg
    };
    let exec = TaskGraphExec::new(0);
    let mut model: Brnn<f32> = Brnn::new(small, 1);
    let xs: Vec<_> = (0..small.seq_len)
        .map(|t| init::uniform(16, small.input_size, -1.0, 1.0, t as u64))
        .collect();
    let mut opt = Sgd::new(0.05);
    exec.train_batch(&mut model, &xs, &Target::Classes(vec![0; 16]), &mut opt);
    let records = exec.runtime().take_records();
    write_chrome_trace(&results.join("trace_live.json"), "B-Par live", &records)
        .expect("write trace");
    println!(
        "live: {} tasks recorded on {} workers",
        records.len(),
        exec.runtime().workers()
    );
    println!(
        "\ntraces written to {}/trace_*.json — open in chrome://tracing",
        results.display()
    );
}
