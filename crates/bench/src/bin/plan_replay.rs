//! Plan-cache overhead measurement: graph *build* vs graph *replay*.
//!
//! §IV-B of the paper requires task-instantiation overhead to stay an
//! order of magnitude below useful task time. The serving hot path used
//! to pay the full build cost — a model deep copy plus dependency
//! resolution over every `in`/`out` clause — on every batch; with cached
//! execution plans it pays it once per batch shape and thereafter only
//! the replay cost (copying frozen bookkeeping into the runtime).
//!
//! This bench runs repeated same-shape inference batches through one
//! resident [`TaskGraphExec`] and reports, per shape:
//!
//! * `build_us` — plan construction + dependency compilation (the cost
//!   the old code paid per batch, paid here exactly once),
//! * `replay_us` — mean graph re-submission cost per cached batch,
//! * `task_us` — mean useful task time per batch,
//! * the replay-to-task overhead ratio against the paper's 10% bound.
//!
//! Usage: `cargo run --release -p bpar-bench --bin plan_replay`

use bpar_bench::{print_table, write_json};
use bpar_core::exec::{Executor, TaskGraphExec};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use serde::Serialize;

const SEED: u64 = 7;
const WORKERS: usize = 4;
const BATCHES_PER_SHAPE: usize = 30;
/// §IV-B: orchestration overhead must stay below 10% of task time.
const OVERHEAD_BOUND: f64 = 0.10;

#[derive(Serialize)]
struct ShapeRow {
    rows: usize,
    seq: usize,
    tasks: usize,
    batches: usize,
    build_us: f64,
    replay_us_mean: f64,
    task_us_mean: f64,
    build_over_replay: f64,
    replay_overhead_frac: f64,
    within_bound: bool,
}

#[derive(Serialize)]
struct PlanReplayReport {
    seed: u64,
    workers: usize,
    batches_per_shape: usize,
    overhead_bound: f64,
    config: String,
    plan_hits: u64,
    plan_misses: u64,
    weight_syncs: u64,
    shapes: Vec<ShapeRow>,
}

fn main() {
    let cfg = BrnnConfig {
        input_size: 16,
        hidden_size: 32,
        layers: 2,
        seq_len: 16,
        output_size: DIGIT_CLASSES,
        kind: ModelKind::ManyToOne,
        ..Default::default()
    };
    let model: Brnn<f64> = Brnn::new(cfg, SEED);
    let data = TidigitsDataset::new(cfg.input_size, 12, SEED);
    let exec = TaskGraphExec::new(WORKERS);

    // Serving-shaped workload: a handful of padded shapes, each hot.
    let shapes: &[(usize, usize)] = &[(1, 16), (4, 16), (8, 16), (8, 24)];

    let mut rows_out = Vec::new();
    let mut shape_rows = Vec::new();
    for &(rows, seq) in shapes {
        let (batch, _labels) = data.batch::<f64>(rows as u64 * 1000, rows, seq);
        let before = exec.plan_cache_stats();
        let mut task_time = 0.0;
        let mut tasks = 0;
        for _ in 0..BATCHES_PER_SHAPE {
            let _ = exec.forward(&model, &batch);
            // Replay clears the previous batch's records, so these stats
            // cover exactly the batch that just ran.
            let rt = exec.runtime().stats();
            task_time += rt.total_task_time;
            tasks = rt.tasks;
        }
        let after = exec.plan_cache_stats();
        assert_eq!(after.misses - before.misses, 1, "one build per shape");
        assert_eq!(
            after.hits - before.hits,
            BATCHES_PER_SHAPE as u64 - 1,
            "every other batch replays the cached plan"
        );

        let build_us = (after.build_ns - before.build_ns) as f64 / 1e3;
        let replay_us_mean =
            (after.replay_ns - before.replay_ns) as f64 / 1e3 / BATCHES_PER_SHAPE as f64;
        let task_us_mean = task_time * 1e6 / BATCHES_PER_SHAPE as f64;
        let replay_overhead_frac = replay_us_mean / task_us_mean;
        let row = ShapeRow {
            rows,
            seq,
            tasks,
            batches: BATCHES_PER_SHAPE,
            build_us,
            replay_us_mean,
            task_us_mean,
            build_over_replay: build_us / replay_us_mean,
            replay_overhead_frac,
            within_bound: replay_overhead_frac < OVERHEAD_BOUND,
        };
        rows_out.push(vec![
            format!("{rows}x{seq}"),
            row.tasks.to_string(),
            format!("{:.1}", row.build_us),
            format!("{:.1}", row.replay_us_mean),
            format!("{:.1}", row.task_us_mean),
            format!("{:.1}x", row.build_over_replay),
            format!("{:.2}%", row.replay_overhead_frac * 100.0),
            row.within_bound.to_string(),
        ]);
        shape_rows.push(row);
    }

    print_table(
        "plan build vs replay (per batch)",
        &[
            "shape",
            "tasks",
            "build_us",
            "replay_us",
            "task_us",
            "build/rep",
            "overhead",
            "<10%",
        ],
        &rows_out,
    );

    let stats = exec.plan_cache_stats();
    println!(
        "\ntotals: {} plan builds, {} replays, {} weight deep copies ({} batches)",
        stats.misses,
        stats.hits,
        stats.weight_syncs,
        shapes.len() * BATCHES_PER_SHAPE
    );

    let canonical = format!(
        "in={},h={},l={},out={},workers={WORKERS},n={BATCHES_PER_SHAPE}",
        cfg.input_size, cfg.hidden_size, cfg.layers, cfg.output_size
    );
    let report = PlanReplayReport {
        seed: SEED,
        workers: WORKERS,
        batches_per_shape: BATCHES_PER_SHAPE,
        overhead_bound: OVERHEAD_BOUND,
        config: canonical.clone(),
        plan_hits: stats.hits,
        plan_misses: stats.misses,
        weight_syncs: stats.weight_syncs,
        shapes: shape_rows,
    };
    write_json(
        &bpar_serve::metrics::report_name("plan_replay", SEED, &canonical),
        &report,
    );
}
