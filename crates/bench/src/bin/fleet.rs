//! Fleet bench (ISSUE tentpole experiment): replica-scaling throughput
//! and hedged-dispatch tail latency for the `bpar-router` tier.
//!
//! The build machine exposes **one core**, so a compute-bound fleet
//! cannot show replica scaling — every FLOP serializes on the same CPU
//! no matter how many replica threads exist. Both scenarios therefore
//! use seeded *straggle* injection (`bpar_runtime::fault`), which turns
//! service time into deterministic in-task sleeps: sleeps overlap across
//! replica threads exactly the way independent accelerator queues or
//! remote compute would, while the residual real compute (a tiny BLSTM)
//! stays negligible. The honest reading of scenario A is "N replicas
//! overlap N wait-dominated request streams", which is the regime the
//! router exists for; it is **not** a claim about multiplying FLOP
//! throughput on one core.
//!
//! * **Scenario A — replica scaling.** Every task of every request
//!   sleeps `STRAGGLE_A` (straggle rate 1.0), making per-request service
//!   time a fixed sleep budget. The whole workload is pre-enqueued
//!   behind the router's paused-start gate (open-loop overload in the
//!   limit: arrivals infinitely faster than service) and drained by 1,
//!   2, and 4 replicas under least-loaded routing. Gate:
//!   `throughput(4) >= 2.5 x throughput(1)`.
//!
//! * **Scenario B — hedged tail.** Requests arrive on a fixed cadence;
//!   a rare per-task draw (`STRAGGLE_B_RATE`) sleeps `STRAGGLE_B` —
//!   a 25 ms stall against a sub-millisecond service time, the classic
//!   straggler profile hedging targets. Two same-seed runs on 2
//!   replicas: hedging `off`, then `deadline` hedging at
//!   `HEDGE_QUANTILE`. The primary copies draw identical straggles in
//!   both runs (stateless per-shard seeded injection); the hedge copy
//!   re-runs the request on the other shard under that shard's seed and
//!   almost always skips the stall, and the claimed cancel token stops
//!   the straggling primary mid-epoch. Gate: hedged p99 < unhedged p99.
//!
//! Both scenarios assert their gates and exit non-zero on failure, so
//! the CI `fleet-chaos` job can run this binary directly. The JSON
//! filename is deterministic: seed + a hash of the structural config.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fleet`

use bpar_bench::{print_table, write_json};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_data::tidigits::TidigitsDataset;
use bpar_router::{HedgePolicy, Router, RouterConfig, RouterReport, RoutingPolicy};
use bpar_runtime::FaultConfig;
use bpar_serve::metrics::report_name;
use bpar_serve::server::RetryPolicy;
use bpar_serve::{
    BackpressurePolicy, BatchPolicy, InferRequest, MetricsCollector, ServeConfig, ServingReport,
};
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const MEAN_FRAMES: usize = 8;

// Scenario A: uniform sleep-per-task service time.
const REPLICA_POINTS: [usize; 3] = [1, 2, 4];
const REQUESTS_A: u64 = 48;
const STRAGGLE_A: Duration = Duration::from_micros(250);
const SCALING_GATE: f64 = 2.5;

// Scenario B: rare large stalls, fixed arrival cadence.
// The cadence keeps the fleet well under saturation: queueing delay
// would otherwise pollute the latency window the hedge deadline is
// derived from, and hedges would arm too late to beat the stall.
const REQUESTS_B: u64 = 240;
const REPLICAS_B: usize = 2;
const ARRIVAL_GAP_B: Duration = Duration::from_micros(2500);
const STRAGGLE_B: Duration = Duration::from_millis(25);
const STRAGGLE_B_RATE: f64 = 0.002; // per task; ~15-20 tasks per request
const HEDGE_QUANTILE: f64 = 0.9;

fn model() -> Brnn<f32> {
    Brnn::new(
        BrnnConfig {
            input_size: 8,
            hidden_size: 8,
            layers: 1,
            seq_len: MEAN_FRAMES + 3, // longest drawn utterance
            output_size: 4,
            kind: ModelKind::ManyToOne,
            ..BrnnConfig::default()
        },
        1,
    )
}

fn serve_cfg(queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        queue_capacity,
        policy: BackpressurePolicy::Block,
        // Singleton batches: per-request service time stays a pure
        // function of the request, independent of batching luck.
        batch: BatchPolicy::batch_of_one(),
        workers: 1,
        retry: RetryPolicy::immediate(1),
        ..ServeConfig::default()
    }
}

/// Runs one fleet configuration and returns the router report plus a
/// fleet-level latency/outcome report assembled from the delivered
/// terminal outcomes.
fn run_fleet(
    replicas: usize,
    routing: RoutingPolicy,
    hedge: HedgePolicy,
    fault: FaultConfig,
    requests: u64,
    arrival_gap: Option<Duration>,
) -> (RouterReport, ServingReport, f64) {
    let config = RouterConfig {
        replicas,
        routing,
        hedge,
        serve: serve_cfg(2 * requests as usize + 4),
        fault: Some(fault),
        // No gap = pre-enqueue the whole workload behind the start gate.
        start_paused: arrival_gap.is_none(),
    };
    let metrics = Arc::new(Mutex::new(MetricsCollector::new()));
    let sink = Arc::clone(&metrics);
    let router = Router::new(vec![model()], config, move |outcome| {
        sink.lock()
            .expect("metrics poisoned")
            .record_outcome(&outcome)
    });
    let data = TidigitsDataset::new(8, MEAN_FRAMES, SEED);
    let start = Instant::now();
    let mut next = Instant::now();
    for id in 0..requests {
        if let Some(gap) = arrival_gap {
            next += gap;
            if let Some(wait) = next.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        router.submit(InferRequest::new(id, data.utterance::<f32>(id).frames));
    }
    router.release();
    let report = router.finish();
    let elapsed = start.elapsed();
    let fleet = Arc::try_unwrap(metrics)
        .unwrap_or_else(|_| panic!("metrics still shared"))
        .into_inner()
        .expect("metrics poisoned")
        .finish(1, elapsed);
    (report, fleet, elapsed.as_secs_f64())
}

#[derive(Debug, Serialize)]
struct ScalingPoint {
    replicas: usize,
    requests: u64,
    served: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    speedup_vs_1: f64,
}

#[derive(Debug, Serialize)]
struct HedgeRun {
    hedge: String,
    served: u64,
    failed: u64,
    hedges: u64,
    hedge_wins: u64,
    cancelled_copies: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

#[derive(Debug, Serialize)]
struct FleetBench {
    seed: u64,
    straggle_a_us: u64,
    scaling: Vec<ScalingPoint>,
    scaling_speedup_4x: f64,
    scaling_gate: f64,
    scaling_gate_passed: bool,
    straggle_b_us: u64,
    straggle_b_rate: f64,
    hedge_quantile: f64,
    unhedged: HedgeRun,
    hedged: HedgeRun,
    hedging_gate_passed: bool,
}

fn hedge_run(name: &str, report: &RouterReport, fleet: &ServingReport) -> HedgeRun {
    HedgeRun {
        hedge: name.to_string(),
        served: report.served,
        failed: report.failed,
        hedges: report.hedges,
        hedge_wins: report.hedge_wins,
        cancelled_copies: report.cancelled_copies,
        p50_us: fleet.latency.p50_us,
        p99_us: fleet.latency.p99_us,
        max_us: fleet.latency.max_us,
    }
}

fn main() {
    // --- Scenario A: replica scaling on a sleep-dominated workload. ---
    let fault_a = FaultConfig {
        seed: SEED,
        straggle_rate: 1.0,
        straggle: STRAGGLE_A,
        ..FaultConfig::default()
    };
    let mut scaling: Vec<ScalingPoint> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &replicas in &REPLICA_POINTS {
        let (report, _, elapsed_s) = run_fleet(
            replicas,
            RoutingPolicy::LeastLoaded,
            HedgePolicy::Off,
            fault_a,
            REQUESTS_A,
            None,
        );
        assert_eq!(
            report.served, REQUESTS_A,
            "scenario A must serve everything: {report:?}"
        );
        let throughput = REQUESTS_A as f64 / elapsed_s;
        let speedup = match scaling.first() {
            None => 1.0,
            Some(base) => throughput / base.throughput_rps,
        };
        rows.push(vec![
            replicas.to_string(),
            report.served.to_string(),
            format!("{:.3}", elapsed_s),
            format!("{:.1}", throughput),
            format!("{speedup:.2}x"),
        ]);
        scaling.push(ScalingPoint {
            replicas,
            requests: REQUESTS_A,
            served: report.served,
            elapsed_s,
            throughput_rps: throughput,
            speedup_vs_1: speedup,
        });
    }
    print_table(
        &format!(
            "scenario A: replica scaling, {} requests, {}us sleep per task",
            REQUESTS_A,
            STRAGGLE_A.as_micros()
        ),
        &["replicas", "served", "elapsed(s)", "thr(r/s)", "speedup"],
        &rows,
    );
    let speedup_4x = scaling.last().expect("three points").speedup_vs_1;
    let scaling_ok = speedup_4x >= SCALING_GATE;
    println!(
        "scaling gate: 4 replicas at {speedup_4x:.2}x vs 1 (need >= {SCALING_GATE}x) -> {}",
        if scaling_ok { "PASS" } else { "FAIL" }
    );

    // --- Scenario B: hedged dispatch vs rare large stragglers. ---
    let fault_b = FaultConfig {
        seed: SEED,
        straggle_rate: STRAGGLE_B_RATE,
        straggle: STRAGGLE_B,
        ..FaultConfig::default()
    };
    let (off_report, off_fleet, _) = run_fleet(
        REPLICAS_B,
        RoutingPolicy::Hash,
        HedgePolicy::Off,
        fault_b,
        REQUESTS_B,
        Some(ARRIVAL_GAP_B),
    );
    let (hedge_report, hedge_fleet, _) = run_fleet(
        REPLICAS_B,
        RoutingPolicy::Hash,
        HedgePolicy::deadline(HEDGE_QUANTILE),
        fault_b,
        REQUESTS_B,
        Some(ARRIVAL_GAP_B),
    );
    assert_eq!(off_report.served, REQUESTS_B, "unhedged run lost requests");
    assert_eq!(hedge_report.served, REQUESTS_B, "hedged run lost requests");
    let straggled: u64 = off_report
        .shards
        .iter()
        .map(|s| s.serving.injected_straggles)
        .sum();
    assert!(
        straggled >= 2,
        "straggle plan must actually stall some tasks (got {straggled})"
    );
    let unhedged = hedge_run("off", &off_report, &off_fleet);
    let hedged = hedge_run(
        &HedgePolicy::deadline(HEDGE_QUANTILE).name(),
        &hedge_report,
        &hedge_fleet,
    );
    println!(
        "\nscenario B: {} requests every {}us, {}ms stall at rate {} per task, {} replicas",
        REQUESTS_B,
        ARRIVAL_GAP_B.as_micros(),
        STRAGGLE_B.as_millis(),
        STRAGGLE_B_RATE,
        REPLICAS_B
    );
    for run in [&unhedged, &hedged] {
        println!(
            "  {:<14} p50 {:>8.2} ms  p99 {:>8.2} ms  max {:>8.2} ms  \
             ({} hedges, {} wins, {} cancelled copies)",
            run.hedge,
            run.p50_us as f64 / 1e3,
            run.p99_us as f64 / 1e3,
            run.max_us as f64 / 1e3,
            run.hedges,
            run.hedge_wins,
            run.cancelled_copies,
        );
    }
    let hedging_ok = hedged.p99_us < unhedged.p99_us;
    println!(
        "hedging gate: p99 {:.2} ms (hedged) vs {:.2} ms (off) -> {}",
        hedged.p99_us as f64 / 1e3,
        unhedged.p99_us as f64 / 1e3,
        if hedging_ok { "PASS" } else { "FAIL" }
    );

    // Structural config only — measured values must not change the name.
    let canonical = format!(
        "reqs_a={REQUESTS_A},straggle_a={}us,points={REPLICA_POINTS:?},gate={SCALING_GATE},\
         reqs_b={REQUESTS_B},gap_b={}us,straggle_b={}ms,rate_b={STRAGGLE_B_RATE},\
         q={HEDGE_QUANTILE},replicas_b={REPLICAS_B}",
        STRAGGLE_A.as_micros(),
        ARRIVAL_GAP_B.as_micros(),
        STRAGGLE_B.as_millis(),
    );
    let bench = FleetBench {
        seed: SEED,
        straggle_a_us: STRAGGLE_A.as_micros() as u64,
        scaling,
        scaling_speedup_4x: speedup_4x,
        scaling_gate: SCALING_GATE,
        scaling_gate_passed: scaling_ok,
        straggle_b_us: STRAGGLE_B.as_micros() as u64,
        straggle_b_rate: STRAGGLE_B_RATE,
        hedge_quantile: HEDGE_QUANTILE,
        unhedged,
        hedged,
        hedging_gate_passed: hedging_ok,
    };
    write_json(&report_name("fleet", SEED, &canonical), &bench);

    if !scaling_ok || !hedging_ok {
        eprintln!("fleet bench gate failure");
        std::process::exit(1);
    }
}
