//! Fault-recovery experiment: what injected task failures cost a serving
//! system that retries, and what they cost one that does not.
//!
//! Three closed-loop runs over the **same** seeded workload:
//!
//! * **clean** — no fault plan; the baseline latency profile.
//! * **faulty + retry** — seeded panics and stragglers injected into the
//!   worker pool (`bpar_runtime::fault`), recovered by singleton retries
//!   with the default circuit breaker.
//! * **faulty, no retry** — the same fault plan with retries disabled;
//!   every failed batch permanently fails its requests.
//!
//! The recorded verdicts:
//!
//! 1. **Conservation** — in every run, each submitted request reaches
//!    exactly one terminal outcome (the process aborts otherwise).
//! 2. **Recovery value** — with retries, served count must strictly
//!    exceed the no-retry run under the same faults.
//! 3. **Bounded degradation** — served p99 under faults stays within
//!    `P99_BOUND`× the clean run's p99. Failed singles re-execute, so
//!    some inflation is expected; unbounded inflation is a regression.
//!
//! Per-task panic probability amplifies per batch: a batch fails if any
//! of its ~`2·seq_len·layers` tasks dies, so `panic_rate = 0.004` at
//! ~60 tasks/batch fails roughly one batch in five.
//!
//! The JSON filename is deterministic: seed + hash of the structural
//! configuration, never wall-clock.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fault_recovery`

use bpar_bench::{print_table, write_json};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_data::tidigits::DIGIT_CLASSES;
use bpar_runtime::FaultConfig;
use bpar_serve::metrics::report_name;
use bpar_serve::{
    run_closed_loop, BackpressurePolicy, BatchPolicy, ClosedLoopConfig, RetryPolicy, ServeConfig,
    ServingReport,
};
use serde::Serialize;
use std::time::Duration;

const SEED: u64 = 42;
const REQUESTS: u64 = 120;
const MEAN_FRAMES: usize = 11;
const MAX_BATCH: usize = 4;
const WINDOW_US: u64 = 500;
const PANIC_RATE: f64 = 0.004;
const STRAGGLE_RATE: f64 = 0.01;
const STRAGGLE_US: u64 = 200;
/// Served p99 under faults must stay within this factor of clean p99.
const P99_BOUND: f64 = 10.0;

#[derive(Debug, Serialize)]
struct FaultRecoveryReport {
    seed: u64,
    requests: u64,
    panic_rate: f64,
    straggle_rate: f64,
    straggle_us: u64,
    p99_bound: f64,
    clean: ServingReport,
    faulty_retry: ServingReport,
    faulty_no_retry: ServingReport,
    clean_p99_us: u64,
    faulty_p99_us: u64,
    p99_ratio: f64,
    p99_within_bound: bool,
    retry_recovers_more: bool,
}

fn model() -> Brnn<f32> {
    Brnn::new(
        BrnnConfig {
            input_size: 20,
            hidden_size: 32,
            layers: 2,
            seq_len: 14,
            output_size: DIGIT_CLASSES,
            kind: ModelKind::ManyToOne,
            ..BrnnConfig::default()
        },
        1,
    )
}

fn run(fault: Option<FaultConfig>, retry: RetryPolicy) -> ServingReport {
    let cfg = ServeConfig {
        queue_capacity: REQUESTS as usize,
        policy: BackpressurePolicy::Block,
        batch: BatchPolicy::new(MAX_BATCH, Duration::from_micros(WINDOW_US)),
        workers: 1,
        retry,
        ..ServeConfig::default()
    };
    let report = run_closed_loop(
        model(),
        cfg,
        ClosedLoopConfig {
            seed: SEED,
            requests: REQUESTS,
            mean_frames: MEAN_FRAMES,
            deadline: None,
            fault,
        },
    );
    assert_eq!(
        report.served + report.shed + report.rejected + report.failed,
        report.submitted,
        "request conservation violated"
    );
    report
}

fn main() {
    // Injected faults surface as task panics; without this the default
    // hook prints a full backtrace per injection and drowns the table.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|msg| msg.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));
    let fault = FaultConfig {
        seed: SEED,
        panic_rate: PANIC_RATE,
        straggle_rate: STRAGGLE_RATE,
        straggle: Duration::from_micros(STRAGGLE_US),
        ..FaultConfig::default()
    };

    let clean = run(None, RetryPolicy::default());
    let faulty_retry = run(Some(fault), RetryPolicy::default());
    let faulty_no_retry = run(Some(fault), RetryPolicy::disabled());

    let rows: Vec<Vec<String>> = [
        ("clean", &clean),
        ("faulty+retry", &faulty_retry),
        ("faulty no-retry", &faulty_no_retry),
    ]
    .iter()
    .map(|(name, r)| {
        vec![
            name.to_string(),
            r.served.to_string(),
            r.failed.to_string(),
            r.retries.to_string(),
            format!("{}/{}", r.breaker_opened, r.breaker_closed),
            r.injected_panics.to_string(),
            format!("{:.2}", r.latency.p50_us as f64 / 1e3),
            format!("{:.2}", r.latency.p99_us as f64 / 1e3),
        ]
    })
    .collect();
    print_table(
        "fault recovery (same seeded workload, single worker)",
        &[
            "run", "served", "failed", "retries", "brk o/c", "panics", "p50(ms)", "p99(ms)",
        ],
        &rows,
    );

    let clean_p99 = clean.latency.p99_us.max(1);
    let faulty_p99 = faulty_retry.latency.p99_us;
    let p99_ratio = faulty_p99 as f64 / clean_p99 as f64;
    let p99_within_bound = p99_ratio <= P99_BOUND;
    let retry_recovers_more = faulty_retry.served > faulty_no_retry.served;
    println!(
        "\nserved p99 under faults: {:.2} ms vs clean {:.2} ms → ratio {:.2} (bound {P99_BOUND}) → {}",
        faulty_p99 as f64 / 1e3,
        clean_p99 as f64 / 1e3,
        p99_ratio,
        if p99_within_bound { "within bound" } else { "EXCEEDED" }
    );
    println!(
        "retry value: {} served with retries vs {} without under identical faults",
        faulty_retry.served, faulty_no_retry.served
    );
    assert!(
        retry_recovers_more,
        "retries must recover strictly more requests than no-retry under the same faults"
    );

    // Structural config only — measured values must not change the name.
    let canonical = format!(
        "requests={REQUESTS},mb={MAX_BATCH},win={WINDOW_US},panic={PANIC_RATE},\
         straggle={STRAGGLE_RATE}/{STRAGGLE_US},bound={P99_BOUND},policy=block,workers=1"
    );
    let report = FaultRecoveryReport {
        seed: SEED,
        requests: REQUESTS,
        panic_rate: PANIC_RATE,
        straggle_rate: STRAGGLE_RATE,
        straggle_us: STRAGGLE_US,
        p99_bound: P99_BOUND,
        clean,
        faulty_retry,
        faulty_no_retry,
        clean_p99_us: clean_p99,
        faulty_p99_us: faulty_p99,
        p99_ratio,
        p99_within_bound,
        retry_recovers_more,
    };
    write_json(&report_name("fault_recovery", SEED, &canonical), &report);
}
