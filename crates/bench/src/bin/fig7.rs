//! Reproduces Fig. 7: impact of locality-aware scheduling on an 8-layer
//! BLSTM with ~31.7 M parameters (hidden 512, input 256) that does not
//! fit the CPU cache hierarchy.
//!
//! Three results, as in the paper:
//! 1. an execution-time histogram of per-task IPC (locality-aware shifts
//!    time into the hot 1.5–2.0 bin: paper 5% → 29%),
//! 2. an execution-time histogram of per-task L3 MPKI (locality-aware
//!    drains the high-MPKI bins: paper 28% → 10% for 20–30 MPKI),
//! 3. the average batch-time reduction (paper: 20%).
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig7`

use bpar_bench::{bpar_result, paper, print_table, write_json, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Result {
    params: usize,
    ipc_edges: Vec<f64>,
    ipc_aware: Vec<f64>,
    ipc_oblivious: Vec<f64>,
    mpki_edges: Vec<f64>,
    mpki_aware: Vec<f64>,
    mpki_oblivious: Vec<f64>,
    batch_time_aware: f64,
    batch_time_oblivious: f64,
    miss_bytes_aware: f64,
    miss_bytes_oblivious: f64,
}

fn main() {
    // 8-layer BLSTM, hidden 512: 2·(1.57M + 7·2.1M) ≈ 31.7M parameters.
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 512,
        layers: 8,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    println!(
        "Model: 8-layer BLSTM, {:.1}M parameters (paper: 31.7M)",
        cfg.rnn_param_count() as f64 / 1e6
    );

    // More replicas than cores so scheduling decisions actually matter.
    let (batch, cores, mbs) = (120, 8, 12);
    let aware = bpar_result(
        &cfg,
        batch,
        cores,
        mbs,
        Phase::Training,
        SchedulerPolicy::LocalityAware,
    );
    let oblivious = bpar_result(
        &cfg,
        batch,
        cores,
        mbs,
        Phase::Training,
        SchedulerPolicy::Fifo,
    );

    let ipc_edges = vec![0.0, 0.5, 1.0, 1.5, 2.0];
    let mpki_edges = vec![0.0, 5.0, 10.0, 15.0, 20.0];
    let ipc_a = aware.ipc_histogram(&ipc_edges);
    let ipc_o = oblivious.ipc_histogram(&ipc_edges);
    let mpki_a = aware.mpki_histogram(&mpki_edges);
    let mpki_o = oblivious.mpki_histogram(&mpki_edges);

    let pct = |v: f64| format!("{:.0}%", v * 100.0);
    let rows: Vec<Vec<String>> = (0..ipc_edges.len())
        .map(|i| {
            let hi = ipc_edges
                .get(i + 1)
                .map(|e| e.to_string())
                .unwrap_or("inf".into());
            vec![
                format!("{}-{}", ipc_edges[i], hi),
                pct(ipc_o.share[i]),
                pct(ipc_a.share[i]),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 left: fraction of execution time per IPC bin",
        &["IPC", "oblivious", "locality-aware"],
        &rows,
    );
    println!(
        "Paper: IPC 1.5-2.0 time share rises 5% -> 29%; ours: {} -> {}.",
        pct(ipc_o.share[3] + ipc_o.share[4]),
        pct(ipc_a.share[3] + ipc_a.share[4]),
    );

    let rows: Vec<Vec<String>> = (0..mpki_edges.len())
        .map(|i| {
            let hi = mpki_edges
                .get(i + 1)
                .map(|e| e.to_string())
                .unwrap_or("inf".into());
            vec![
                format!("{}-{}", mpki_edges[i], hi),
                pct(mpki_o.share[i]),
                pct(mpki_a.share[i]),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 right: fraction of execution time per L3-MPKI bin (proxy scale)",
        &["MPKI", "oblivious", "locality-aware"],
        &rows,
    );
    // "High MPKI" = everything at or above the 10-MPKI edge.
    let high_share = |h: &bpar_sim::metrics::TimeHistogram| -> f64 {
        h.edges
            .iter()
            .zip(&h.share)
            .filter(|(e, _)| **e >= 10.0)
            .map(|(_, s)| *s)
            .sum()
    };
    println!(
        "Paper: high-MPKI time share falls 28% -> 10%; ours (>=10 MPKI): {} -> {}.",
        pct(high_share(&mpki_o)),
        pct(high_share(&mpki_a)),
    );

    let reduction = 1.0 - aware.makespan / oblivious.makespan;
    println!(
        "\nBatch time: oblivious {:.3}s -> locality-aware {:.3}s, a {:.0}% reduction \
         (paper: {:.0}%).",
        oblivious.makespan,
        aware.makespan,
        reduction * 100.0,
        paper::locality::TIME_REDUCTION * 100.0
    );
    println!(
        "Memory traffic: {:.1} GB -> {:.1} GB.",
        oblivious.total_miss_bytes() / 1e9,
        aware.total_miss_bytes() / 1e9
    );

    write_json(
        "fig7",
        &Fig7Result {
            params: cfg.rnn_param_count(),
            ipc_edges,
            ipc_aware: ipc_a.share,
            ipc_oblivious: ipc_o.share,
            mpki_edges,
            mpki_aware: mpki_a.share,
            mpki_oblivious: mpki_o.share,
            batch_time_aware: aware.makespan,
            batch_time_oblivious: oblivious.makespan,
            miss_bytes_aware: aware.total_miss_bytes(),
            miss_bytes_oblivious: oblivious.total_miss_bytes(),
        },
    );
}
