//! Reproduces Fig. 6: single-batch training *and* inference time for
//! B-Par, B-Seq, Keras and PyTorch while varying the layer count
//! {2, 4, 8, 12} (BLSTM, hidden 256, batch 128, seq 100).
//!
//! Expected shape (paper §IV-B): B-Par scales best with depth — deeper
//! models expose proportionally more parallelism while the frameworks
//! serialize every extra layer behind barriers. The paper reports 5.89×
//! (inference) and 6.40× (training) speed-ups at 12 layers; our barrier
//! model is linear in depth, so the reproduced gap is smaller (~2–3×) —
//! see EXPERIMENTS.md for the discussion.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig6`

use bpar_bench::{bpar_best, bseq_best, print_table, write_json, CpuFramework, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Point {
    layers: usize,
    phase: String,
    keras: f64,
    pytorch: f64,
    bseq: f64,
    bpar: f64,
}

fn main() {
    let machine = Machine::xeon_8160();
    let keras = CpuFramework::keras();
    let pytorch = CpuFramework::pytorch();
    let mut points = Vec::new();

    for phase in [Phase::Training, Phase::Inference] {
        let phase_name = match phase {
            Phase::Training => "training",
            Phase::Inference => "inference",
        };
        let mut rows = Vec::new();
        for layers in [2usize, 4, 8, 12] {
            let cfg = BrnnConfig {
                cell: CellKind::Lstm,
                input_size: 256,
                hidden_size: 256,
                layers,
                seq_len: 100,
                output_size: 11,
                merge: MergeMode::Sum,
                kind: ModelKind::ManyToOne,
            };
            let (k, _) = keras.best_batch_time(&cfg, 128, &machine, phase);
            let (p, _) = pytorch.best_batch_time(&cfg, 128, &machine, phase);
            let (bs, _) = bseq_best(&cfg, 128, 48, phase);
            let (bp, _) = bpar_best(&cfg, 128, 48, phase);
            rows.push(vec![
                layers.to_string(),
                format!("{k:.3}"),
                format!("{p:.3}"),
                format!("{bs:.3}"),
                format!("{bp:.3}"),
                format!("{:.2}x", k / bp),
            ]);
            points.push(Fig6Point {
                layers,
                phase: phase_name.into(),
                keras: k,
                pytorch: p,
                bseq: bs,
                bpar: bp,
            });
            eprint!(".");
        }
        eprintln!();
        print_table(
            &format!("Fig. 6 ({phase_name}): time per batch (s) vs layer count"),
            &["layers", "Keras", "PyTorch", "B-Seq", "B-Par", "B-Par vs K"],
            &rows,
        );
    }

    // Shape: the B-Par advantage must grow with depth.
    let gap = |phase: &str, layers| {
        let p = points
            .iter()
            .find(|p| p.phase == phase && p.layers == layers)
            .unwrap();
        p.keras / p.bpar
    };
    println!(
        "\nB-Par vs Keras gap grows with depth: training {:.2}x (2L) -> {:.2}x (12L); \
         inference {:.2}x -> {:.2}x (paper: up to 6.40x / 5.89x).",
        gap("training", 2),
        gap("training", 12),
        gap("inference", 2),
        gap("inference", 12)
    );
    write_json("fig6", &points);
}
