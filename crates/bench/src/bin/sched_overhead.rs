//! Scheduler overhead and scaling: the work-stealing modernization gates.
//!
//! Three sections, each printed as a table and written together to
//! `results/sched_overhead.json`:
//!
//! 1. **live** — per-task scheduling overhead (ns/task) of the live
//!    runtime at 8 workers for Fifo / LocalityAware / WorkStealing, on a
//!    replayed plan of 8 independent chains of empty tasks. Empty bodies
//!    make the measurement pure runtime cost: lock traffic, queue ops,
//!    wakeups. Gate: work-stealing ≤ global-FIFO (per-worker deques plus
//!    immediate-successor handoff must not cost more than the single
//!    global queue).
//! 2. **queue-depth** — the satellite fix for `VecDeque::remove(pos)`:
//!    draining a 10k-deep ready queue through the old shift-on-remove
//!    code (replicated inline) vs the current swap-to-front `ReadySet`,
//!    for the locality-affinity path and the random-adversarial path.
//!    Gate: the swap-remove implementation is not slower on either path.
//! 3. **scaling** — deterministic bpar-sim makespans of a BRNN training
//!    graph at 1..48 virtual cores, global FIFO vs work-stealing. Gate:
//!    work-stealing throughput ≥ FIFO at every core count and strictly
//!    better at 48 (the deque organisation homes each released task on
//!    its releasing core, so it inherits the locality win of Fig. 7
//!    without the global queue's contention).
//!
//! The live and queue-depth numbers are wall-clock measurements and vary
//! run to run; the scaling section is a bit-deterministic function of the
//! cost model. Usage:
//! `cargo run --release -p bpar-bench --bin sched_overhead`

use bpar_bench::{bpar_result, brnn_config, print_table, write_json, Phase, TableConfig};
use bpar_core::cell::CellKind;
use bpar_runtime::plan::{PlanBuilder, PlanSpec};
use bpar_runtime::scheduler::{AdversarialOrder, ReadySet, SchedulerPolicy};
use bpar_runtime::{RegionId, Runtime, RuntimeConfig};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

const WORKERS: usize = 8;
const CHAINS: u64 = 8;
const CHAIN_LEN: usize = 2500;
const REPS: usize = 7;

#[derive(Serialize)]
struct LiveRow {
    policy: String,
    workers: usize,
    tasks: usize,
    ns_per_task: f64,
}

#[derive(Serialize)]
struct DepthRow {
    path: String,
    implementation: String,
    depth: usize,
    ns_per_pop: f64,
}

#[derive(Serialize)]
struct ScalingRow {
    cores: usize,
    fifo_makespan: f64,
    locality_makespan: f64,
    work_stealing_makespan: f64,
}

#[derive(Serialize)]
struct Report {
    live: Vec<LiveRow>,
    queue_depth: Vec<DepthRow>,
    scaling: Vec<ScalingRow>,
}

/// Median wall-clock ns/task for replaying the chain plan under `policy`.
fn live_ns_per_task(policy: SchedulerPolicy) -> f64 {
    let rt = Runtime::new(RuntimeConfig {
        workers: WORKERS,
        policy,
        record_trace: false,
    });
    let mut b = PlanBuilder::new();
    for c in 0..CHAINS {
        for _ in 0..CHAIN_LEN {
            b.submit(
                PlanSpec::new("t")
                    .ins([RegionId(c)])
                    .outs([RegionId(c)])
                    .body(|| {}),
            );
        }
    }
    let plan = Arc::new(b.compile());
    let tasks = (CHAINS as usize) * CHAIN_LEN;
    // Warm: first replays grow the queues/deques to steady-state capacity.
    for _ in 0..3 {
        rt.replay(&plan);
        rt.taskwait().unwrap();
    }
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            rt.replay(&plan);
            rt.taskwait().unwrap();
            t0.elapsed().as_secs_f64() * 1e9 / tasks as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[REPS / 2]
}

/// The pre-fix ready set: one global `VecDeque` with `remove(pos)` for
/// every non-front extraction — the O(window × n) behaviour the
/// swap-to-front fix removed. Replicated here so the before/after is
/// measured on the same toolchain rather than quoted from an old commit.
struct LegacyReadySet {
    queue: VecDeque<(usize, Option<usize>)>,
    window: usize,
    rng: u64,
}

impl LegacyReadySet {
    fn new(workers: usize, seed: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            window: (2 * workers).max(8),
            rng: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    fn push(&mut self, task: usize, preferred: Option<usize>) {
        self.queue.push_back((task, preferred));
    }

    fn pop_locality(&mut self, worker: usize) -> Option<usize> {
        let depth = self.window.min(self.queue.len());
        if let Some(pos) = self
            .queue
            .iter()
            .take(depth)
            .position(|&(_, tag)| tag == Some(worker))
        {
            return self.queue.remove(pos).map(|(t, _)| t);
        }
        self.queue.pop_front().map(|(t, _)| t)
    }

    fn pop_random(&mut self) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let len = self.queue.len() as u64;
        let pos = ((self.rng as u128 * len as u128) >> 64) as usize;
        self.queue.remove(pos).map(|(t, _)| t)
    }
}

/// ns/pop to fully drain a `depth`-deep queue, where every 8th task is
/// affine to the draining worker (the affinity scan finds a mid-window
/// hit on most pops, forcing a non-front removal).
fn drain_locality(depth: usize, legacy: bool) -> f64 {
    let fill = |push: &mut dyn FnMut(usize, Option<usize>)| {
        for i in 0..depth {
            push(i, if i % 8 == 0 { Some(0) } else { Some(1) });
        }
    };
    let t0;
    if legacy {
        let mut q = LegacyReadySet::new(WORKERS, 1);
        fill(&mut |t, tag| q.push(t, tag));
        t0 = Instant::now();
        while q.pop_locality(0).is_some() {}
    } else {
        let mut q = ReadySet::new(SchedulerPolicy::LocalityAware, WORKERS);
        fill(&mut |t, tag| q.push(t, tag));
        t0 = Instant::now();
        while q.pop(0).is_some() {}
    }
    t0.elapsed().as_secs_f64() * 1e9 / depth as f64
}

/// ns/pop to fully drain a `depth`-deep queue through the seeded random
/// adversarial order (uniform mid-queue removals).
fn drain_random(depth: usize, legacy: bool) -> f64 {
    let t0;
    if legacy {
        let mut q = LegacyReadySet::new(WORKERS, 42);
        for i in 0..depth {
            q.push(i, None);
        }
        t0 = Instant::now();
        while q.pop_random().is_some() {}
    } else {
        let mut q = ReadySet::new(
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(42)),
            WORKERS,
        );
        for i in 0..depth {
            q.push(i, None);
        }
        t0 = Instant::now();
        while q.pop(0).is_some() {}
    }
    t0.elapsed().as_secs_f64() * 1e9 / depth as f64
}

fn main() {
    // ---- 1. live runtime overhead ------------------------------------
    let live: Vec<LiveRow> = [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::LocalityAware,
        SchedulerPolicy::WorkStealing,
    ]
    .into_iter()
    .map(|policy| LiveRow {
        policy: policy.as_str().into(),
        workers: WORKERS,
        tasks: (CHAINS as usize) * CHAIN_LEN,
        ns_per_task: live_ns_per_task(policy),
    })
    .collect();
    print_table(
        "live scheduling overhead (8 chains x 2500 empty tasks, 8 workers, median of 7)",
        &["policy", "ns/task"],
        &live
            .iter()
            .map(|r| vec![r.policy.clone(), format!("{:.0}", r.ns_per_task)])
            .collect::<Vec<_>>(),
    );
    let ns_of = |name: &str| {
        live.iter()
            .find(|r| r.policy == name)
            .expect("policy row")
            .ns_per_task
    };
    assert!(
        ns_of("work-stealing") <= ns_of("fifo"),
        "GATE: work-stealing ns/task ({:.0}) must not exceed global-FIFO ({:.0}) at {WORKERS} workers",
        ns_of("work-stealing"),
        ns_of("fifo"),
    );

    // ---- 2. deep-ready-queue removal ---------------------------------
    let depth = 10_000;
    let median = |f: fn(usize, bool) -> f64, legacy: bool| {
        let mut s: Vec<f64> = (0..5).map(|_| f(depth, legacy)).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        s[2]
    };
    let mut queue_depth = Vec::new();
    for (path, f) in [
        ("locality-scan", drain_locality as fn(usize, bool) -> f64),
        ("random-adversarial", drain_random as fn(usize, bool) -> f64),
    ] {
        for legacy in [true, false] {
            queue_depth.push(DepthRow {
                path: path.into(),
                implementation: if legacy { "remove(pos)" } else { "swap-remove" }.into(),
                depth,
                ns_per_pop: median(f, legacy),
            });
        }
    }
    print_table(
        "10k-deep ready-queue drain (before/after the swap-to-front fix)",
        &["path", "impl", "ns/pop"],
        &queue_depth
            .iter()
            .map(|r| {
                vec![
                    r.path.clone(),
                    r.implementation.clone(),
                    format!("{:.0}", r.ns_per_pop),
                ]
            })
            .collect::<Vec<_>>(),
    );
    // The affinity path finds its hit inside the bounded scan window, so
    // `remove(pos)` there shifted at most `window` elements (VecDeque
    // removes through the shorter side) and both implementations are
    // dominated by the scan itself — gate at parity with noise slack. The
    // mid-queue paths (random adversarial, and scripted pops which share
    // the same removal) are where the O(n)→O(1) fix lives: on a 10k-deep
    // queue the old code shifted ~len/2 elements per pop, so the gate is
    // strict there (the measured win is ~60x).
    for pair in queue_depth.chunks(2) {
        let slack = if pair[0].path == "locality-scan" {
            1.25
        } else {
            1.0
        };
        assert!(
            pair[1].ns_per_pop <= pair[0].ns_per_pop * slack,
            "GATE: swap-remove ({:.0} ns/pop) slower than remove(pos) ({:.0} ns/pop) on {}",
            pair[1].ns_per_pop,
            pair[0].ns_per_pop,
            pair[0].path,
        );
    }

    // ---- 3. simulated scaling ----------------------------------------
    let tc = TableConfig {
        input: 64,
        hidden: 128,
        batch: 64,
        seq: 50,
    };
    let cfg = brnn_config(CellKind::Lstm, &tc, 4);
    let mbs = 8;
    let scaling: Vec<ScalingRow> = [1usize, 2, 4, 8, 12, 16, 24, 32, 48]
        .into_iter()
        .map(|cores| ScalingRow {
            cores,
            fifo_makespan: bpar_result(
                &cfg,
                tc.batch,
                cores,
                mbs,
                Phase::Training,
                SchedulerPolicy::Fifo,
            )
            .makespan,
            locality_makespan: bpar_result(
                &cfg,
                tc.batch,
                cores,
                mbs,
                Phase::Training,
                SchedulerPolicy::LocalityAware,
            )
            .makespan,
            work_stealing_makespan: bpar_result(
                &cfg,
                tc.batch,
                cores,
                mbs,
                Phase::Training,
                SchedulerPolicy::WorkStealing,
            )
            .makespan,
        })
        .collect();
    print_table(
        "simulated BLSTM training makespan, FIFO vs work-stealing (4 layers, hidden 128, seq 50, mbs 8)",
        &["cores", "fifo ms", "locality ms", "work-stealing ms", "ws speedup"],
        &scaling
            .iter()
            .map(|r| {
                vec![
                    r.cores.to_string(),
                    format!("{:.2}", r.fifo_makespan * 1e3),
                    format!("{:.2}", r.locality_makespan * 1e3),
                    format!("{:.2}", r.work_stealing_makespan * 1e3),
                    format!("{:.2}x", r.fifo_makespan / r.work_stealing_makespan),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for r in &scaling {
        // Throughput ≥ FIFO at every core count: allow only float-noise
        // slack (reordered f64 accumulation) below 48 cores…
        assert!(
            r.work_stealing_makespan <= r.fifo_makespan * (1.0 + 1e-9),
            "GATE: work-stealing makespan {} > fifo {} at {} cores",
            r.work_stealing_makespan,
            r.fifo_makespan,
            r.cores,
        );
    }
    // …and strictly better at the full 48-core machine.
    let at48 = scaling.last().expect("48-core row");
    assert!(
        at48.work_stealing_makespan < at48.fifo_makespan,
        "GATE: work-stealing must strictly beat the global queue at 48 cores ({} vs {})",
        at48.work_stealing_makespan,
        at48.fifo_makespan,
    );

    write_json(
        "sched_overhead",
        &Report {
            live,
            queue_depth,
            scaling,
        },
    );
    println!("all scheduler gates passed");
}
