//! Reproduces Fig. 5: single-batch training time for 8- and 12-layer
//! BLSTMs over batch sizes {128, 256, 512, 1024} and hidden sizes
//! {128, 256}, best over core counts, for B-Par, Keras, PyTorch and
//! B-Seq.
//!
//! Expected shape (paper §IV-B): B-Par consistently fastest with
//! speed-ups in the 1.58–6.40× range; PyTorch worst everywhere; times
//! grow roughly linearly in batch size.
//!
//! Usage: `cargo run --release -p bpar-bench --bin fig5`

use bpar_bench::{bpar_best, bseq_best, print_table, write_json, CpuFramework, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Point {
    layers: usize,
    hidden: usize,
    batch: usize,
    keras: f64,
    pytorch: f64,
    bseq: f64,
    bpar: f64,
}

fn main() {
    let machine = Machine::xeon_8160();
    let keras = CpuFramework::keras();
    let pytorch = CpuFramework::pytorch();
    let mut points = Vec::new();
    let mut rows = Vec::new();

    for layers in [8usize, 12] {
        for hidden in [128usize, 256] {
            for batch in [128usize, 256, 512, 1024] {
                let cfg = BrnnConfig {
                    cell: CellKind::Lstm,
                    input_size: 256,
                    hidden_size: hidden,
                    layers,
                    seq_len: 100,
                    output_size: 11,
                    merge: MergeMode::Sum,
                    kind: ModelKind::ManyToOne,
                };
                let (k, _) = keras.best_batch_time(&cfg, batch, &machine, Phase::Training);
                let (p, _) = pytorch.best_batch_time(&cfg, batch, &machine, Phase::Training);
                let (bs, _) = bseq_best(&cfg, batch, 48, Phase::Training);
                let (bp, _) = bpar_best(&cfg, batch, 48, Phase::Training);
                rows.push(vec![
                    format!("{layers}L/h{hidden}/b{batch}"),
                    format!("{k:.2}"),
                    format!("{p:.2}"),
                    format!("{bs:.2}"),
                    format!("{bp:.2}"),
                    format!("{:.2}x", k / bp),
                    format!("{:.2}x", p / bp),
                ]);
                points.push(Fig5Point {
                    layers,
                    hidden,
                    batch,
                    keras: k,
                    pytorch: p,
                    bseq: bs,
                    bpar: bp,
                });
                eprint!(".");
            }
        }
    }
    eprintln!();
    print_table(
        "Fig. 5: best-over-cores training time (s) and B-Par speed-up",
        &[
            "config", "Keras", "PyTorch", "B-Seq", "B-Par", "vs K", "vs P",
        ],
        &rows,
    );

    let speedups: Vec<f64> = points.iter().map(|p| p.keras / p.bpar).collect();
    let lo = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = speedups.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nB-Par vs Keras speed-up range: {lo:.2}x – {hi:.2}x \
         (paper: 1.58x – 6.40x across Fig. 5/6 configurations)."
    );
    let wins = points
        .iter()
        .filter(|p| p.bpar < p.keras && p.bpar < p.pytorch && p.bpar < p.bseq)
        .count();
    println!(
        "B-Par fastest in {wins}/{} configurations (paper: all).",
        points.len()
    );
    write_json("fig5", &points);
}
