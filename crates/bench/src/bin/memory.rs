//! Reproduces the §IV-B memory-consumption experiment: working-set size
//! and average task concurrency of an 8-layer BLSTM at mbs:6, with and
//! without per-layer synchronisation.
//!
//! Paper numbers: 75.36 MB (barrier-free) vs 28.26 MB (per-layer
//! barriers); the barrier-free run keeps an average of 16 tasks in
//! flight vs 6 with barriers — removing barriers trades working-set size
//! for parallelism with no accuracy loss.
//!
//! Usage: `cargo run --release -p bpar-bench --bin memory`

use bpar_bench::{paper, print_table, write_json};
use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::{simulate, SimConfig};
use serde::Serialize;

#[derive(Serialize)]
struct MemoryResult {
    free_avg_ws_mb: f64,
    barred_avg_ws_mb: f64,
    free_peak_ws_mb: f64,
    barred_peak_ws_mb: f64,
    free_avg_tasks: f64,
    barred_avg_tasks: f64,
    free_makespan: f64,
    barred_makespan: f64,
}

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 8,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let spec = GraphSpec::training(cfg, 126).with_mbs(6);
    let free = simulate(&build_graph(&spec), &SimConfig::xeon(48));
    let barred = simulate(
        &build_graph(&spec.with_barriers(true)),
        &SimConfig::xeon(48),
    );

    let mb = |b: f64| b / (1024.0 * 1024.0);
    let (free_peak, free_avg) = free.working_set();
    let (barred_peak, barred_avg) = barred.working_set();

    let rows = vec![
        vec![
            "avg working set (MB)".into(),
            format!("{:.2}", mb(free_avg)),
            format!("{:.2}", mb(barred_avg)),
            format!(
                "{:.2} / {:.2}",
                paper::memory::BARRIER_FREE_WS_MB,
                paper::memory::BARRIERED_WS_MB
            ),
        ],
        vec![
            "peak working set (MB)".into(),
            format!("{:.2}", mb(free_peak as f64)),
            format!("{:.2}", mb(barred_peak as f64)),
            "-".into(),
        ],
        vec![
            "avg parallel tasks".into(),
            format!("{:.1}", free.avg_concurrency()),
            format!("{:.1}", barred.avg_concurrency()),
            format!(
                "{:.0} / {:.0}",
                paper::memory::BARRIER_FREE_TASKS,
                paper::memory::BARRIERED_TASKS
            ),
        ],
        vec![
            "batch time (s)".into(),
            format!("{:.2}", free.makespan),
            format!("{:.2}", barred.makespan),
            "-".into(),
        ],
    ];
    print_table(
        "Memory consumption (8-layer BLSTM, mbs:6): barrier-free vs per-layer barriers",
        &[
            "metric",
            "barrier-free",
            "barriers",
            "paper (free/barriers)",
        ],
        &rows,
    );
    println!(
        "\nRemoving barriers raises concurrency {:.1}x and the working set {:.1}x, \
         while cutting batch time {:.1}x — the paper's trade-off, with no \
         accuracy impact (see the `accuracy` binary).",
        free.avg_concurrency() / barred.avg_concurrency(),
        free_avg / barred_avg,
        barred.makespan / free.makespan
    );

    write_json(
        "memory",
        &MemoryResult {
            free_avg_ws_mb: mb(free_avg),
            barred_avg_ws_mb: mb(barred_avg),
            free_peak_ws_mb: mb(free_peak as f64),
            barred_peak_ws_mb: mb(barred_peak as f64),
            free_avg_tasks: free.avg_concurrency(),
            barred_avg_tasks: barred.avg_concurrency(),
            free_makespan: free.makespan,
            barred_makespan: barred.makespan,
        },
    );
}
