//! Kernel-backend throughput: GFLOP/s of the three GEMM variants at RNN
//! task shapes, per [`Backend`] (scalar reference, runtime-detected SIMD,
//! int8 quantized inference).
//!
//! The shapes are the fused LSTM gate products `(batch × (input+hidden)) ·
//! ((input+hidden) × 4·hidden)` at the model scales of Tables III/IV, plus
//! an `m = 1` serving shape where the GEMM degenerates to a matrix-vector
//! product. Int8 rows report *effective* GFLOP/s — the f32 FLOP count of
//! the equivalent exact GEMM divided by wall time, i.e. "how much f32 work
//! this path replaces per second" (its inner loop does integer dot
//! products plus quantize/dequantize passes).
//!
//! When the SIMD backend is actually vectorized on this machine
//! (`Backend::simd().simd_active()`), the binary *asserts* a ≥ 2× geomean
//! speed-up over scalar on the forward-path `NN` GEMM — this is the CI
//! gate that keeps the SIMD path from silently rotting into a scalar
//! fallback. On machines without AVX2/NEON the gate is skipped (the
//! backend *is* the scalar fallback there, by design).
//!
//! Usage:
//!   cargo run --release -p bpar-bench --bin kernels
//!   (expects `RUSTFLAGS=-Ctarget-feature=+avx2,+fma` or a native target
//!    for the SIMD rows to be meaningful)

use bpar_bench::{print_table, write_json};
use bpar_tensor::{init, Backend, BackendKind, Matrix, Workspace};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 17;
const WARMUP: usize = 2;
/// Minimum FLOPs per timed sample; iteration counts are derived from the
/// shape so small shapes don't drown in timer noise.
const TARGET_FLOPS: f64 = 2e8;
/// The in-binary CI gate: SIMD must beat scalar by this factor (geomean
/// over shapes, forward `NN` GEMM) wherever SIMD is genuinely active.
const SIMD_GATE: f64 = 2.0;

/// `(batch, input + hidden, 4 * hidden)` LSTM gate-GEMM shapes.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 320, 512),
    (16, 96, 128),
    (32, 320, 512),
    (64, 512, 1024),
];

#[derive(Serialize)]
struct KernelRow {
    op: &'static str,
    backend: &'static str,
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
    gflops: f64,
    /// This row's speed-up over the scalar backend at the same (op, shape).
    vs_scalar: f64,
}

#[derive(Serialize)]
struct KernelsReport {
    seed: u64,
    simd_active: bool,
    simd_gate: f64,
    /// Geomean SIMD/scalar speed-up on the forward-path NN GEMM.
    simd_nn_geomean: f64,
    config: String,
    rows: Vec<KernelRow>,
}

/// Times `f` over a derived iteration count and returns (GFLOP/s, iters).
fn time_gflops(flops_per_iter: f64, mut f: impl FnMut()) -> (f64, usize) {
    let iters = ((TARGET_FLOPS / flops_per_iter).ceil() as usize).clamp(3, 10_000);
    for _ in 0..WARMUP {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let secs = start.elapsed().as_secs_f64();
    (flops_per_iter * iters as f64 / secs / 1e9, iters)
}

fn main() {
    let simd_active = Backend::simd().simd_active();
    println!("kernel backends: simd_active = {simd_active} (scalar fallback otherwise)");

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut table = Vec::new();
    for &(m, k, n) in SHAPES {
        let a: Matrix<f32> = init::uniform(m, k, -1.0, 1.0, SEED);
        let b: Matrix<f32> = init::uniform(k, n, -1.0, 1.0, SEED + 1);
        let bt: Matrix<f32> = init::uniform(n, k, -1.0, 1.0, SEED + 2);
        let at: Matrix<f32> = init::uniform(k, m, -1.0, 1.0, SEED + 3);
        let mut c: Matrix<f32> = Matrix::zeros(m, n);
        let mut ws: Workspace<f32> = Workspace::new();
        let flops = 2.0 * m as f64 * k as f64 * n as f64;

        for kind in BackendKind::all() {
            let be = Backend::of(kind);
            // Warm the int8 quantization scratch outside the timed region.
            be.gemm(1.0f32, &a, &b, 0.0, &mut c, &mut ws);

            // The int8 path only specializes the forward NN product; its
            // nt/tn variants delegate to scalar and would report duplicate
            // rows.
            let ops: &[&'static str] = if kind == BackendKind::Int8 {
                &["gemm_nn"]
            } else {
                &["gemm_nn", "gemm_nt", "gemm_tn"]
            };
            for &op in ops {
                let (gflops, iters) = match op {
                    "gemm_nn" => time_gflops(flops, || {
                        be.gemm(1.0f32, black_box(&a), black_box(&b), 0.0, &mut c, &mut ws);
                        black_box(c.get(0, 0));
                    }),
                    "gemm_nt" => time_gflops(flops, || {
                        be.gemm_nt(1.0f32, black_box(&a), black_box(&bt), 0.0, &mut c);
                        black_box(c.get(0, 0));
                    }),
                    _ => time_gflops(flops, || {
                        be.gemm_tn(1.0f32, black_box(&at), black_box(&b), 0.0, &mut c);
                        black_box(c.get(0, 0));
                    }),
                };
                let vs_scalar = rows
                    .iter()
                    .find(|r| {
                        r.op == op
                            && r.backend == BackendKind::Scalar.as_str()
                            && (r.m, r.k, r.n) == (m, k, n)
                    })
                    .map_or(1.0, |r| gflops / r.gflops);
                table.push(vec![
                    op.to_string(),
                    kind.as_str().to_string(),
                    format!("{m}x{k}x{n}"),
                    iters.to_string(),
                    format!("{gflops:.2}"),
                    format!("{vs_scalar:.2}x"),
                ]);
                rows.push(KernelRow {
                    op,
                    backend: kind.as_str(),
                    m,
                    k,
                    n,
                    iters,
                    gflops,
                    vs_scalar,
                });
            }
        }
    }

    print_table(
        "kernel backends: GFLOP/s per backend and GEMM shape",
        &["op", "backend", "shape", "iters", "GFLOP/s", "vs_scalar"],
        &table,
    );

    let nn_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.op == "gemm_nn" && r.backend == BackendKind::Simd.as_str())
        .map(|r| r.vs_scalar)
        .collect();
    let geomean =
        (nn_speedups.iter().map(|s| s.ln()).sum::<f64>() / nn_speedups.len().max(1) as f64).exp();
    println!(
        "\nSIMD vs scalar, forward NN GEMM geomean: {geomean:.2}x \
         (gate: >= {SIMD_GATE}x when SIMD is active)"
    );
    if simd_active {
        assert!(
            geomean >= SIMD_GATE,
            "SIMD backend is active but its NN GEMM geomean speed-up \
             ({geomean:.2}x) is below the {SIMD_GATE}x gate — the \
             vectorized path has regressed"
        );
    } else {
        println!("(SIMD inactive on this machine; gate skipped)");
    }

    let canonical = format!(
        "shapes={},warmup={WARMUP},target_flops={TARGET_FLOPS:.0},gate={SIMD_GATE},simd={simd_active}",
        SHAPES
            .iter()
            .map(|&(m, k, n)| format!("{m}x{k}x{n}"))
            .collect::<Vec<_>>()
            .join("+"),
    );
    let report = KernelsReport {
        seed: SEED,
        simd_active,
        simd_gate: SIMD_GATE,
        simd_nn_geomean: geomean,
        config: canonical.clone(),
        rows,
    };
    write_json(
        &bpar_serve::metrics::report_name("kernels", SEED, &canonical),
        &report,
    );
}
