//! Verifies the §III accuracy-preservation claim on the *live* executors
//! (real threads, not the simulator): orchestrating BRNN training via
//! task dependencies produces results identical to a sequential run.
//!
//! Trains a small BLSTM on the synthetic TIDIGITS corpus with every
//! executor and compares losses, parameters, and final test accuracy.
//!
//! Usage: `cargo run --release -p bpar-bench --bin accuracy`

use bpar_bench::{print_table, write_json};
use bpar_core::exec::{BSeqExec, BarrierExec, Executor, SequentialExec, Target, TaskGraphExec};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_core::optim::Sgd;
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    executor: String,
    final_loss: f64,
    accuracy: f64,
    max_param_diff_vs_sequential: f64,
}

fn main() {
    let cfg = BrnnConfig {
        input_size: 16,
        hidden_size: 24,
        layers: 2,
        seq_len: 12,
        output_size: DIGIT_CLASSES,
        kind: ModelKind::ManyToOne,
        ..Default::default()
    };
    let data = TidigitsDataset::new(cfg.input_size, 10, 7);
    let batches: Vec<_> = (0..20)
        .map(|i| data.batch::<f64>(i * 16, 16, cfg.seq_len))
        .collect();
    let eval = data.batch::<f64>(10_000, 64, cfg.seq_len);

    let execs: Vec<(&str, Box<dyn Executor<f64>>)> = vec![
        ("sequential", Box::new(SequentialExec::new())),
        ("b-par", Box::new(TaskGraphExec::new(4))),
        (
            "b-par mbs:4",
            Box::new(TaskGraphExec::with_config(
                4,
                bpar_runtime::SchedulerPolicy::LocalityAware,
                4,
            )),
        ),
        ("barrier", Box::new(BarrierExec::new(4))),
        ("b-seq mbs:4", Box::new(BSeqExec::new(4, 4))),
    ];

    let mut reference: Option<Brnn<f64>> = None;
    let mut results = Vec::new();
    for (name, exec) in &execs {
        let mut model: Brnn<f64> = Brnn::new(cfg, 42);
        let mut opt = Sgd::new(0.1);
        let mut loss = 0.0;
        for _ in 0..3 {
            for (xs, labels) in &batches {
                loss = exec.train_batch(&mut model, xs, &Target::Classes(labels.clone()), &mut opt);
            }
        }
        let out = exec.forward(&model, &eval.0);
        let acc = bpar_core::loss::accuracy(&out.logits, &eval.1);
        let diff = reference
            .as_ref()
            .map(|r| model.max_param_diff(r))
            .unwrap_or(0.0);
        if reference.is_none() {
            reference = Some(model.clone());
        }
        results.push(AccuracyRow {
            executor: name.to_string(),
            final_loss: loss,
            accuracy: acc,
            max_param_diff_vs_sequential: diff,
        });
        eprint!(".");
    }
    eprintln!();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.executor.clone(),
                format!("{:.6}", r.final_loss),
                format!("{:.1}%", r.accuracy * 100.0),
                format!("{:.2e}", r.max_param_diff_vs_sequential),
            ]
        })
        .collect();
    print_table(
        "Accuracy preservation: 60 live training batches on synthetic TIDIGITS",
        &[
            "executor",
            "final loss",
            "test accuracy",
            "param diff vs sequential",
        ],
        &rows,
    );

    for r in &results {
        if r.executor.contains("mbs") {
            assert!(
                r.max_param_diff_vs_sequential < 1e-9,
                "{}: data-parallel drift {}",
                r.executor,
                r.max_param_diff_vs_sequential
            );
        } else {
            assert_eq!(
                r.max_param_diff_vs_sequential, 0.0,
                "{}: must match sequential bit-for-bit",
                r.executor
            );
        }
    }
    println!(
        "\nAll executors match the sequential reference (bitwise at mbs:1, to fp \
         tolerance under data-parallel re-chunking) — the paper's 'no accuracy \
         loss' claim."
    );
    write_json("accuracy", &results);
}
