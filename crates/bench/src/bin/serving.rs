//! Dynamic micro-batching serving sweep (ISSUE tentpole experiment).
//!
//! Sweeps {batching window × max batch size × offered rate} over the
//! `bpar-serve` stack and compares three batching disciplines at every
//! rate:
//!
//! * **batch=1** — each request served alone, no batching delay;
//! * **fixed** — batches close only when full (a long window stands in
//!   for "wait for a full batch");
//! * **dynamic** — micro-batches close on time-window OR max-batch,
//!   whichever first.
//!
//! Offered rates and windows are expressed as multiples of the measured
//! single-request service time, so the sweep exercises the same
//! under-load / saturation / overload regimes on any machine (and in
//! debug or release builds). The run completes on a single worker core.
//!
//! For each rate the explicit comparison is printed and recorded: does
//! some dynamic point serve strictly more requests per second than
//! batch=1 at equal-or-better p99? Under overload it must — batch=1
//! burns a full task-graph submission per request while dynamic batching
//! amortizes it over up to `max_batch` rows.
//!
//! The JSON filename is deterministic: seed + a hash of the structural
//! sweep configuration, never wall-clock.
//!
//! Usage: `cargo run --release -p bpar-bench --bin serving`

use bpar_bench::{print_table, write_json};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_data::tidigits::DIGIT_CLASSES;
use bpar_serve::metrics::report_name;
use bpar_serve::{
    run_closed_loop, run_open_loop, BackpressurePolicy, BatchPolicy, ClosedLoopConfig,
    OpenLoopConfig, ServeConfig, ServingReport,
};
use serde::Serialize;
use std::time::Duration;

const SEED: u64 = 42;
const REQUESTS: u64 = 120;
const MEAN_FRAMES: usize = 11;
const QUEUE_CAP: usize = 64;
const BUCKET_WIDTH: usize = 16; // lengths vary ~7..15 → one shared bucket
const RATE_MULTIPLIERS: [f64; 3] = [0.5, 1.5, 3.0];
const WINDOW_FACTORS: [f64; 2] = [2.0, 8.0]; // × single-request service time
const MAX_BATCHES: [usize; 2] = [4, 8];
const DEADLINE_FACTOR: f64 = 40.0;

/// One rate's dynamic-vs-batch=1 verdict.
#[derive(Debug, Clone, Serialize)]
struct Comparison {
    rate_rps: f64,
    batch1_throughput_rps: f64,
    batch1_p99_us: u64,
    best_dynamic_window_us: u64,
    best_dynamic_max_batch: usize,
    best_dynamic_throughput_rps: f64,
    best_dynamic_p99_us: u64,
    /// Strictly higher throughput at equal-or-better p99.
    dynamic_wins: bool,
}

#[derive(Debug, Serialize)]
struct ServingSweep {
    seed: u64,
    requests_per_point: u64,
    calibrated_service_us: f64,
    batch1_capacity_rps: f64,
    points: Vec<ServingReport>,
    comparisons: Vec<Comparison>,
    any_dynamic_win: bool,
}

fn model() -> Brnn<f32> {
    Brnn::new(
        BrnnConfig {
            input_size: 20,
            hidden_size: 32,
            layers: 2,
            seq_len: 14,
            output_size: DIGIT_CLASSES,
            kind: ModelKind::ManyToOne,
            ..BrnnConfig::default()
        },
        1,
    )
}

fn serve_cfg(max_batch: usize, window: Duration) -> ServeConfig {
    ServeConfig {
        queue_capacity: QUEUE_CAP,
        policy: BackpressurePolicy::ShedExpired,
        batch: BatchPolicy::new(max_batch, window).with_bucket_width(BUCKET_WIDTH),
        workers: 1,
        ..ServeConfig::default()
    }
}

/// Measures the single-request service time (µs) with a short closed
/// loop at batch=1: the p50 of the forward-pass service component.
fn calibrate() -> f64 {
    let report = run_closed_loop(
        model(),
        ServeConfig {
            queue_capacity: 1,
            policy: BackpressurePolicy::Block,
            batch: BatchPolicy::batch_of_one(),
            workers: 1,
            ..ServeConfig::default()
        },
        ClosedLoopConfig {
            seed: SEED,
            requests: 30,
            mean_frames: MEAN_FRAMES,
            deadline: None,
            fault: None,
        },
    );
    (report.service.p50_us as f64).max(1.0)
}

fn run_point(
    rate_rps: f64,
    max_batch: usize,
    window: Duration,
    deadline: Duration,
) -> ServingReport {
    run_open_loop(
        model(),
        serve_cfg(max_batch, window),
        OpenLoopConfig {
            seed: SEED,
            rate_rps,
            requests: REQUESTS,
            mean_frames: MEAN_FRAMES,
            deadline: Some(deadline),
            fault: None,
        },
    )
}

fn main() {
    let service_us = calibrate();
    let capacity_rps = 1e6 / service_us;
    let deadline = Duration::from_micros((service_us * DEADLINE_FACTOR) as u64);
    println!(
        "calibration: single-request service {:.2} ms → batch=1 capacity ~{:.0} req/s",
        service_us / 1e3,
        capacity_rps
    );

    let mut points: Vec<ServingReport> = Vec::new();
    let mut comparisons: Vec<Comparison> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for mult in RATE_MULTIPLIERS {
        let rate = capacity_rps * mult;

        // Baseline 1: no batching.
        let batch1 = run_point(rate, 1, Duration::ZERO, deadline);
        points.push(batch1.clone());
        rows.push(summary_row(&format!("{mult}x"), "batch=1", &batch1));

        // Baseline 2: fixed-size batching (closes only when full; the
        // long window is the drain backstop).
        let fixed_window = Duration::from_micros((service_us * 50.0) as u64);
        let fixed = run_point(rate, 8, fixed_window, deadline);
        points.push(fixed.clone());
        rows.push(summary_row(&format!("{mult}x"), "fixed b=8", &fixed));

        // Dynamic micro-batching sweep.
        let mut best: Option<ServingReport> = None;
        for wf in WINDOW_FACTORS {
            for mb in MAX_BATCHES {
                let window = Duration::from_micros((service_us * wf) as u64);
                let report = run_point(rate, mb, window, deadline);
                rows.push(summary_row(
                    &format!("{mult}x"),
                    &format!("dyn b={mb} w={wf}t"),
                    &report,
                ));
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (
                            report.throughput_rps,
                            std::cmp::Reverse(report.latency.p99_us),
                        ) > (b.throughput_rps, std::cmp::Reverse(b.latency.p99_us))
                    }
                };
                if better {
                    best = Some(report.clone());
                }
                points.push(report);
            }
        }
        let best = best.expect("at least one dynamic point per rate");
        comparisons.push(Comparison {
            rate_rps: rate,
            batch1_throughput_rps: batch1.throughput_rps,
            batch1_p99_us: batch1.latency.p99_us,
            best_dynamic_window_us: best.window_us,
            best_dynamic_max_batch: best.max_batch,
            best_dynamic_throughput_rps: best.throughput_rps,
            best_dynamic_p99_us: best.latency.p99_us,
            dynamic_wins: best.throughput_rps > batch1.throughput_rps
                && best.latency.p99_us <= batch1.latency.p99_us,
        });
    }

    print_table(
        "serving sweep (shed policy, single worker)",
        &[
            "rate", "config", "served", "shed", "thr(r/s)", "p50(ms)", "p99(ms)", "rows/b", "fill%",
        ],
        &rows,
    );

    println!("\ndynamic vs batch=1 (best dynamic point per rate):");
    for c in &comparisons {
        println!(
            "  rate {:>7.0} r/s: dynamic (b={}, w={}us) {:>7.1} r/s p99 {:>8.2} ms \
             vs batch=1 {:>7.1} r/s p99 {:>8.2} ms → {}",
            c.rate_rps,
            c.best_dynamic_max_batch,
            c.best_dynamic_window_us,
            c.best_dynamic_throughput_rps,
            c.best_dynamic_p99_us as f64 / 1e3,
            c.batch1_throughput_rps,
            c.batch1_p99_us as f64 / 1e3,
            if c.dynamic_wins {
                "dynamic wins (higher throughput, equal-or-better p99)"
            } else {
                "no strict win"
            }
        );
    }
    let any_dynamic_win = comparisons.iter().any(|c| c.dynamic_wins);
    if !any_dynamic_win {
        println!("  WARNING: no swept point showed a strict dynamic-batching win");
    }

    // Structural config only — measured values must not change the name.
    let canonical = format!(
        "requests={REQUESTS},mults={RATE_MULTIPLIERS:?},winf={WINDOW_FACTORS:?},\
         mb={MAX_BATCHES:?},policy=shed,cap={QUEUE_CAP},bw={BUCKET_WIDTH},workers=1"
    );
    let sweep = ServingSweep {
        seed: SEED,
        requests_per_point: REQUESTS,
        calibrated_service_us: service_us,
        batch1_capacity_rps: capacity_rps,
        points,
        comparisons,
        any_dynamic_win,
    };
    write_json(&report_name("serving", SEED, &canonical), &sweep);
}

fn summary_row(rate: &str, config: &str, r: &ServingReport) -> Vec<String> {
    vec![
        rate.to_string(),
        config.to_string(),
        r.served.to_string(),
        r.shed.to_string(),
        format!("{:.1}", r.throughput_rps),
        format!("{:.2}", r.latency.p50_us as f64 / 1e3),
        format!("{:.2}", r.latency.p99_us as f64 / 1e3),
        format!("{:.1}", r.batch_rows_mean),
        format!("{:.0}", r.batch_fill_mean * 100.0),
    ]
}
