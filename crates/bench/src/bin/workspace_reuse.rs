//! Workspace-arena reuse measurement: allocations-per-batch and
//! throughput, warm vs cold.
//!
//! The memory refactor's claim is that a *warm* replayed inference batch —
//! cached plan, persistent arena, pooled output buffer — touches the heap
//! allocator exactly zero times, where the *cold* path (plan rebuilt from
//! scratch) pays the full build: replica construction, dependency
//! compilation, and every activation/cache buffer. This bench measures
//! both regimes over the same serving-shaped batches and reports
//! per-batch wall time plus — when built with `--features count-alloc`,
//! which installs [`bpar_tensor::CountingAlloc`] process-wide — the exact
//! allocator call and byte counts per batch. Without the feature the
//! allocation columns are `null` rather than silently zero.
//!
//! Usage:
//!   cargo run --release -p bpar-bench --bin workspace_reuse
//!   cargo run --release -p bpar-bench --features count-alloc --bin workspace_reuse

use bpar_bench::{print_table, write_json};
use bpar_core::exec::{Executor, ForwardOutput, TaskGraphExec};
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use bpar_tensor::alloc_track::{allocation_count, bytes_allocated};
use serde::Serialize;
use std::time::Instant;

#[cfg(feature = "count-alloc")]
#[global_allocator]
static ALLOC: bpar_tensor::CountingAlloc = bpar_tensor::CountingAlloc;

const SEED: u64 = 11;
const WORKERS: usize = 4;
const BATCHES: usize = 40;
const WARMUP: usize = 5;

#[derive(Serialize)]
struct ShapeRow {
    rows: usize,
    seq: usize,
    batches: usize,
    cold_batch_us: f64,
    warm_batch_us: f64,
    warm_speedup: f64,
    cold_allocs_per_batch: Option<u64>,
    cold_bytes_per_batch: Option<u64>,
    warm_allocs_per_batch: Option<u64>,
    warm_bytes_per_batch: Option<u64>,
    /// Persistent arena resident for this shape's plan (analytic,
    /// independent of the count-alloc feature).
    arena_bytes: u64,
}

#[derive(Serialize)]
struct WorkspaceReuseReport {
    seed: u64,
    workers: usize,
    batches: usize,
    count_alloc: bool,
    config: String,
    shapes: Vec<ShapeRow>,
}

/// Allocator-call and byte deltas across `f`, as `Some` only when the
/// counting allocator is actually installed.
fn counted(f: impl FnOnce()) -> (Option<u64>, Option<u64>) {
    let (a0, b0) = (allocation_count(), bytes_allocated());
    f();
    let (a1, b1) = (allocation_count(), bytes_allocated());
    if cfg!(feature = "count-alloc") {
        (Some(a1 - a0), Some(b1 - b0))
    } else {
        (None, None)
    }
}

fn main() {
    let cfg = BrnnConfig {
        input_size: 16,
        hidden_size: 32,
        layers: 2,
        seq_len: 16,
        output_size: DIGIT_CLASSES,
        kind: ModelKind::ManyToOne,
        ..Default::default()
    };
    let model: Brnn<f64> = Brnn::new(cfg, SEED);
    let data = TidigitsDataset::new(cfg.input_size, 12, SEED);
    let exec = TaskGraphExec::new(WORKERS);

    let shapes: &[(usize, usize)] = &[(1, 16), (4, 16), (8, 16), (8, 24)];
    let mut table = Vec::new();
    let mut shape_rows = Vec::new();
    for &(rows, seq) in shapes {
        let (batch, _labels) = data.batch::<f64>(rows as u64 * 1000, rows, seq);
        let mut out = ForwardOutput::zeros_for(&model, rows, seq);

        // Cold: every batch rebuilds the plan and re-allocates its arena —
        // what a cache-less executor would pay per batch.
        let cold_start = Instant::now();
        let (cold_allocs, cold_bytes) = counted(|| {
            for _ in 0..BATCHES {
                exec.clear_plan_cache();
                let _ = exec.forward(&model, &batch);
            }
        });
        let cold_batch_us = cold_start.elapsed().as_secs_f64() * 1e6 / BATCHES as f64;

        // Warm: one build, then replays through the persistent arena into
        // a reused output buffer — the serving steady state.
        exec.clear_plan_cache();
        for _ in 0..WARMUP {
            exec.try_forward_into(&model, &batch, &mut out)
                .expect("warmup batch");
        }
        let warm_start = Instant::now();
        let (warm_allocs, warm_bytes) = counted(|| {
            for _ in 0..BATCHES {
                exec.try_forward_into(&model, &batch, &mut out)
                    .expect("warm batch");
            }
        });
        let warm_batch_us = warm_start.elapsed().as_secs_f64() * 1e6 / BATCHES as f64;

        let arena_bytes = exec.plan_cache_stats().arena_bytes;
        let per = |v: Option<u64>| v.map(|n| n / BATCHES as u64);
        let row = ShapeRow {
            rows,
            seq,
            batches: BATCHES,
            cold_batch_us,
            warm_batch_us,
            warm_speedup: cold_batch_us / warm_batch_us,
            cold_allocs_per_batch: per(cold_allocs),
            cold_bytes_per_batch: per(cold_bytes),
            warm_allocs_per_batch: per(warm_allocs),
            warm_bytes_per_batch: per(warm_bytes),
            arena_bytes,
        };
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |n| n.to_string());
        table.push(vec![
            format!("{rows}x{seq}"),
            format!("{:.1}", row.cold_batch_us),
            format!("{:.1}", row.warm_batch_us),
            format!("{:.2}x", row.warm_speedup),
            opt(row.cold_allocs_per_batch),
            opt(row.warm_allocs_per_batch),
            format!("{:.1}", row.arena_bytes as f64 / 1024.0),
        ]);
        shape_rows.push(row);
    }

    print_table(
        "workspace reuse: cold rebuild vs warm replay (per batch)",
        &[
            "shape",
            "cold_us",
            "warm_us",
            "speedup",
            "cold_allocs",
            "warm_allocs",
            "arena_KiB",
        ],
        &table,
    );
    if cfg!(feature = "count-alloc") {
        let max_warm = shape_rows
            .iter()
            .filter_map(|r| r.warm_allocs_per_batch)
            .max()
            .unwrap_or(0);
        println!(
            "\nwarm allocations per batch, worst shape: {max_warm} \
             (steady-state target: 0)"
        );
    } else {
        println!("\n(build with --features count-alloc for exact allocation counts)");
    }

    let canonical = format!(
        "in={},h={},l={},out={},workers={WORKERS},n={BATCHES},count_alloc={}",
        cfg.input_size,
        cfg.hidden_size,
        cfg.layers,
        cfg.output_size,
        cfg!(feature = "count-alloc"),
    );
    let report = WorkspaceReuseReport {
        seed: SEED,
        workers: WORKERS,
        batches: BATCHES,
        count_alloc: cfg!(feature = "count-alloc"),
        config: canonical.clone(),
        shapes: shape_rows,
    };
    write_json(
        &bpar_serve::metrics::report_name("workspace_reuse", SEED, &canonical),
        &report,
    );
}
