//! Reproduces Table III: BLSTM training times and B-Par speed-ups.
//!
//! Usage: `cargo run --release -p bpar-bench --bin table3`

use bpar_bench::paper::TABLE3;
use bpar_bench::tables::run_table;
use bpar_core::cell::CellKind;

fn main() {
    run_table(
        CellKind::Lstm,
        &TABLE3,
        "table3",
        "Table III (BLSTM, 6 layers)",
    );
}
