//! Chain-vs-scan crossover sweep: where parallel-scan recurrence
//! execution starts beating the timestep chain (ROADMAP item 3 — long
//! sequences serialize no matter how many cores the chain gets).
//!
//! Two simulated scenarios bracket the strategy decision, each as a
//! predicted + replayed curve pair:
//!
//! * **single-stream** — one diagonal-recurrent layer, one sequence, no
//!   mini-batch replicas: the serving / long-document case. The chain
//!   exposes only 2 strands, so 6 of 8 cores idle; the scan wins from
//!   the smallest swept length (the seq-length crossover sits at the
//!   sweep floor) and the win grows toward ~6.6× as the tree amortizes.
//! * **saturated** — `mbs = 4` replicas of a compute-heavy cell: the
//!   chain's 8 strands already keep all 8 cores busy, each strand
//!   running cache-warm on its own core. The scan has no idle cores to
//!   recruit, and its combine/fix-up traffic forces cross-core
//!   communication the chain never pays — the replay shows the scan
//!   *losing* at every length. This is the boundary the strategy choice
//!   must respect: scan when cores outnumber chain strands, never when
//!   they don't.
//!
//! Estimator pair (both over the *same* generated graphs):
//! `bpar_sim::crossover::predict` is the analytic Brent bound
//! (per-task overhead + roofline compute, `max(critical path,
//! work/cores)`); `bpar_sim::crossover::replay` is the discrete-event
//! simulation at 8 cores under the locality-aware policy — the repo's
//! standard instrument for core-count claims (DESIGN.md §2). The bound
//! is deliberately memory- and locality-blind, so the saturated
//! scenario also measures how far that blindness drifts: the replay's
//! locality tax lands on the scan side only, and the per-point drift
//! still must stay within 2×.
//!
//! A third, wall-clock section runs live `TaskGraphExec` forward passes
//! on this machine (chain vs `with_strategy(Scan)`, warm plans, median
//! of 5). On a many-core host the scan's parallel win shows up directly;
//! on a single-core CI container it cannot, so the live gate only pins
//! work-efficiency: the scan must stay within 1.5× of the chain.
//!
//! Gates (in-binary, after the JSON is written):
//! * single-stream replay: scan beats chain at every swept T ≥ 4096,
//! * single-stream: replayed crossover within 2× of the prediction,
//! * both scenarios: per-point speedups agree within 2× between the
//!   estimators,
//! * saturated replay: scan wins nowhere (no crossover exists when the
//!   chain already saturates the machine),
//! * live: scan within 1.5× of chain at every swept length.
//!
//! Deterministic sections land in `results/scan_crossover_sim.json`,
//! wall-clock in `results/scan_crossover_live.json`. Usage:
//! `cargo run --release -p bpar-bench --bin scan_crossover`
//! (`--sim-only` skips the live section; CI runs that mode twice and
//! `cmp`s the JSON to pin determinism).

use bpar_bench::{ms, print_table, write_json};
use bpar_core::cell::CellKind;
use bpar_core::exec::{Executor, TaskGraphExec};
use bpar_core::graphgen::GraphSpec;
use bpar_core::model::{Brnn, BrnnConfig, ModelKind};
use bpar_core::scanplan::RecurrenceStrategy;
use bpar_sim::crossover::{chunks_for, predict, replay, CrossoverCurve};
use bpar_sim::SimConfig;
use bpar_tensor::{init, Matrix};
use serde::Serialize;
use std::time::Instant;

/// Simulated core count for the headline curves (the ISSUE's "≥ 8
/// workers" bar; one socket-quarter of the paper machine).
const CORES: usize = 8;
const SINGLE_STREAM_SWEEP: [usize; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];
const SATURATED_SWEEP: [usize; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];
const CORE_COLUMN: [usize; 5] = [2, 4, 8, 16, 48];

const LIVE_SWEEP: [usize; 4] = [256, 1024, 4096, 16384];
const LIVE_WORKERS: usize = 8;
const LIVE_REPS: usize = 5;

/// The workload class the scan targets: a single diagonal-recurrent
/// layer over one long sequence — no data parallelism to hide the
/// chain's serialization behind.
fn single_stream_spec() -> GraphSpec {
    let config = BrnnConfig {
        cell: CellKind::Linear,
        layers: 1,
        seq_len: 64, // overridden per swept point
        input_size: 128,
        hidden_size: 128,
        output_size: 8,
        kind: ModelKind::ManyToOne,
        ..BrnnConfig::default()
    };
    GraphSpec::inference(config, 16)
}

/// The regime the scan must *lose*: four replicas (8 strands on 8
/// cores) of a cell heavy enough that compute, not dispatch, dominates
/// each timestep. Every core already runs its own cache-warm chain;
/// the scan can only redistribute that work at the price of cross-core
/// combine and fix-up traffic.
fn saturated_spec() -> GraphSpec {
    let config = BrnnConfig {
        cell: CellKind::Linear,
        layers: 1,
        seq_len: 64,
        input_size: 512,
        hidden_size: 512,
        output_size: 8,
        kind: ModelKind::ManyToOne,
        ..BrnnConfig::default()
    };
    GraphSpec::inference(config, 64).with_mbs(4)
}

#[derive(Serialize)]
struct ScenarioReport {
    name: String,
    predicted: CrossoverCurve,
    replayed: CrossoverCurve,
    /// `max(pred/replay, replay/pred)` of the crossover sequence
    /// lengths, when both estimators find one.
    crossover_ratio: Option<f64>,
    /// Worst per-point disagreement `max(pred/replay, replay/pred)` of
    /// the speedup columns — how far the Brent bound's *shape* drifts
    /// from the scheduled reality.
    speedup_ratio_max: f64,
}

#[derive(Serialize)]
struct CoreRow {
    cores: usize,
    seq_len: usize,
    chain_s: f64,
    scan_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SimReport {
    cores: usize,
    single_stream: ScenarioReport,
    saturated: ScenarioReport,
    cores_at_16k: Vec<CoreRow>,
}

#[derive(Serialize)]
struct LiveRow {
    seq_len: usize,
    chunks: usize,
    workers: usize,
    chain_s: f64,
    scan_s: f64,
    speedup: f64,
}

fn curve_rows(c: &CrossoverCurve) -> Vec<Vec<String>> {
    c.points
        .iter()
        .map(|p| {
            vec![
                p.seq_len.to_string(),
                p.chunks.to_string(),
                ms(p.chain_s),
                ms(p.scan_s),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect()
}

fn fmt_crossover(x: Option<f64>) -> String {
    x.map_or_else(|| "never".to_string(), |x| format!("T≈{x:.0}"))
}

fn scenario(name: &str, spec: &GraphSpec, sweep: &[usize], cfg: &SimConfig) -> ScenarioReport {
    let predicted = predict(spec, sweep, cfg);
    let replayed = replay(spec, sweep, cfg);

    let headers = ["seq", "chunks", "chain", "scan", "speedup"];
    print_table(
        &format!("{name}: predicted (Brent bound, {} cores)", cfg.cores),
        &headers,
        &curve_rows(&predicted),
    );
    print_table(
        &format!("{name}: replayed (event simulation, {} cores)", cfg.cores),
        &headers,
        &curve_rows(&replayed),
    );

    let crossover_ratio = match (predicted.crossover_seq, replayed.crossover_seq) {
        (Some(p), Some(r)) => Some((p / r).max(r / p)),
        _ => None,
    };
    let speedup_ratio_max = predicted
        .points
        .iter()
        .zip(&replayed.points)
        .map(|(p, r)| (p.speedup / r.speedup).max(r.speedup / p.speedup))
        .fold(0.0, f64::max);
    println!(
        "\n{name} crossover: predicted {}, replayed {} (worst per-point speedup drift {:.2}x)",
        fmt_crossover(predicted.crossover_seq),
        fmt_crossover(replayed.crossover_seq),
        speedup_ratio_max,
    );

    ScenarioReport {
        name: name.to_string(),
        predicted,
        replayed,
        crossover_ratio,
        speedup_ratio_max,
    }
}

fn sim_section() -> SimReport {
    let cfg = SimConfig::xeon(CORES);
    let single_stream = scenario(
        "single-stream",
        &single_stream_spec(),
        &SINGLE_STREAM_SWEEP,
        &cfg,
    );
    let saturated = scenario("saturated", &saturated_spec(), &SATURATED_SWEEP, &cfg);

    let spec = single_stream_spec();
    let cores_at_16k: Vec<CoreRow> = CORE_COLUMN
        .iter()
        .map(|&cores| {
            let c = replay(&spec, &[16384], &SimConfig::xeon(cores));
            let p = c.points[0];
            CoreRow {
                cores,
                seq_len: p.seq_len,
                chain_s: p.chain_s,
                scan_s: p.scan_s,
                speedup: p.speedup,
            }
        })
        .collect();
    print_table(
        "single-stream replayed at T=16384 vs cores",
        &["cores", "chain", "scan", "speedup"],
        &cores_at_16k
            .iter()
            .map(|r| {
                vec![
                    r.cores.to_string(),
                    ms(r.chain_s),
                    ms(r.scan_s),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    SimReport {
        cores: CORES,
        single_stream,
        saturated,
        cores_at_16k,
    }
}

/// Median warm-plan wall-clock seconds for one forward pass.
fn live_time(exec: &TaskGraphExec, model: &Brnn<f64>, batch: &[Matrix<f64>]) -> f64 {
    exec.forward(model, batch); // builds and caches the plan
    let mut samples: Vec<f64> = (0..LIVE_REPS)
        .map(|_| {
            let t0 = Instant::now();
            exec.forward(model, batch);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[LIVE_REPS / 2]
}

fn live_section() -> Vec<LiveRow> {
    // Small enough that a 16k-step forward stays around a second on the
    // scalar backend, long enough that task dispatch is a visible cost.
    let rows = LIVE_SWEEP
        .iter()
        .map(|&seq| {
            let config = BrnnConfig {
                cell: CellKind::Linear,
                layers: 1,
                seq_len: seq,
                input_size: 32,
                hidden_size: 32,
                output_size: 4,
                kind: ModelKind::ManyToOne,
                ..BrnnConfig::default()
            };
            let model: Brnn<f64> = Brnn::new(config, 42);
            let batch: Vec<Matrix<f64>> = (0..seq)
                .map(|t| init::uniform(8, config.input_size, -1.0, 1.0, 100 + t as u64))
                .collect();
            let chunks = chunks_for(seq, LIVE_WORKERS);
            let chain = TaskGraphExec::new(LIVE_WORKERS);
            let scan =
                TaskGraphExec::new(LIVE_WORKERS).with_strategy(RecurrenceStrategy::Scan { chunks });
            let chain_s = live_time(&chain, &model, &batch);
            let scan_s = live_time(&scan, &model, &batch);
            LiveRow {
                seq_len: seq,
                chunks,
                workers: LIVE_WORKERS,
                chain_s,
                scan_s,
                speedup: chain_s / scan_s,
            }
        })
        .collect::<Vec<_>>();
    print_table(
        &format!("live wall-clock ({LIVE_WORKERS} workers, this machine)"),
        &["seq", "chunks", "chain", "scan", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.seq_len.to_string(),
                    r.chunks.to_string(),
                    ms(r.chain_s),
                    ms(r.scan_s),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    rows
}

fn main() {
    let sim_only = std::env::args().any(|a| a == "--sim-only");

    let report = sim_section();
    write_json("scan_crossover_sim", &report);
    let live = if sim_only {
        Vec::new()
    } else {
        let live = live_section();
        write_json("scan_crossover_live", &live);
        live
    };

    // Gates — after the JSON is on disk so a failure still leaves the
    // evidence inspectable.
    assert!(
        report
            .single_stream
            .replayed
            .points
            .iter()
            .filter(|p| p.seq_len >= 4096)
            .all(|p| p.speedup > 1.0),
        "single-stream: scan must beat the chain at every swept seq_len >= 4096"
    );
    let ratio = report
        .single_stream
        .crossover_ratio
        .expect("single-stream: both estimators must find a crossover");
    assert!(
        ratio <= 2.0,
        "single-stream: replayed crossover ({}) drifted more than 2x from the \
         Brent prediction ({})",
        fmt_crossover(report.single_stream.replayed.crossover_seq),
        fmt_crossover(report.single_stream.predicted.crossover_seq),
    );
    for s in [&report.single_stream, &report.saturated] {
        assert!(
            s.speedup_ratio_max <= 2.0,
            "{}: per-point speedup drift {:.2}x between prediction and replay",
            s.name,
            s.speedup_ratio_max,
        );
    }
    assert!(
        report
            .saturated
            .replayed
            .points
            .iter()
            .all(|p| p.speedup < 1.0),
        "saturated: the scan must not win when the chain already keeps every \
         core busy — if it does, the locality model lost its chain-affinity \
         advantage"
    );
    for r in &live {
        assert!(
            r.scan_s <= 1.5 * r.chain_s,
            "live: scan fell more than 1.5x behind the chain at T={} \
             ({:.3}s vs {:.3}s)",
            r.seq_len,
            r.scan_s,
            r.chain_s,
        );
    }
    println!("\nall scan_crossover gates passed");
}
