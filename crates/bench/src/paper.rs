//! Reference measurements transcribed from the paper's evaluation, used
//! for side-by-side reporting (paper vs reproduction) in every
//! experiment binary and in EXPERIMENTS.md.

/// One row of Table III/IV: batch execution times in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct PaperTableRow {
    /// K-CPU: Keras/TensorFlow on the 48-core Xeon.
    pub k_cpu: f64,
    /// K-GPU: Keras/TensorFlow on the V100.
    pub k_gpu: f64,
    /// P-CPU: PyTorch on the Xeon.
    pub p_cpu: f64,
    /// P-GPU: PyTorch on the V100 (`None` = the run hung).
    pub p_gpu: Option<f64>,
    /// B-Seq on the Xeon.
    pub bseq: f64,
    /// B-Par on the Xeon.
    pub bpar: f64,
}

/// Table III (BLSTM), in the row order of [`crate::table_configs`].
pub const TABLE3: [PaperTableRow; 12] = [
    PaperTableRow {
        k_cpu: 1770.76,
        k_gpu: 123.79,
        p_cpu: 3215.68,
        p_gpu: Some(590.57),
        bseq: 2364.00,
        bpar: 989.06,
    },
    PaperTableRow {
        k_cpu: 1770.15,
        k_gpu: 132.67,
        p_cpu: 3956.06,
        p_gpu: Some(590.21),
        bseq: 2419.80,
        bpar: 932.55,
    },
    PaperTableRow {
        k_cpu: 1816.53,
        k_gpu: 193.36,
        p_cpu: 3663.28,
        p_gpu: Some(595.06),
        bseq: 2726.55,
        bpar: 1149.55,
    },
    PaperTableRow {
        k_cpu: 17.47,
        k_gpu: 24.52,
        p_cpu: 20.51,
        p_gpu: Some(24.05),
        bseq: 20.21,
        bpar: 14.94,
    },
    PaperTableRow {
        k_cpu: 37.29,
        k_gpu: 29.27,
        p_cpu: 54.70,
        p_gpu: Some(64.64),
        bseq: 60.76,
        bpar: 24.80,
    },
    PaperTableRow {
        k_cpu: 276.68,
        k_gpu: 80.71,
        p_cpu: 461.45,
        p_gpu: Some(515.62),
        bseq: 439.25,
        bpar: 143.21,
    },
    PaperTableRow {
        k_cpu: 2751.70,
        k_gpu: 177.08,
        p_cpu: 5240.83,
        p_gpu: Some(562.29),
        bseq: 4262.18,
        bpar: 1566.60,
    },
    PaperTableRow {
        k_cpu: 28489.52,
        k_gpu: 1276.98,
        p_cpu: 147839.40,
        p_gpu: None,
        bseq: 71038.30,
        bpar: 17378.61,
    },
    PaperTableRow {
        k_cpu: 2770.82,
        k_gpu: 201.12,
        p_cpu: 5412.32,
        p_gpu: Some(559.32),
        bseq: 4352.02,
        bpar: 1581.97,
    },
    PaperTableRow {
        k_cpu: 28571.33,
        k_gpu: 1316.64,
        p_cpu: 143332.02,
        p_gpu: None,
        bseq: 71715.42,
        bpar: 15640.74,
    },
    PaperTableRow {
        k_cpu: 2893.43,
        k_gpu: 303.52,
        p_cpu: 5713.00,
        p_gpu: Some(558.86),
        bseq: 4546.46,
        bpar: 1830.35,
    },
    PaperTableRow {
        k_cpu: 28721.38,
        k_gpu: 1497.25,
        p_cpu: 117934.39,
        p_gpu: None,
        bseq: 71521.05,
        bpar: 16143.40,
    },
];

/// Table IV (BGRU), in the row order of [`crate::table_configs`].
pub const TABLE4: [PaperTableRow; 12] = [
    PaperTableRow {
        k_cpu: 1246.98,
        k_gpu: 125.36,
        p_cpu: 2726.72,
        p_gpu: Some(604.10),
        bseq: 1702.27,
        bpar: 690.83,
    },
    PaperTableRow {
        k_cpu: 1254.30,
        k_gpu: 153.45,
        p_cpu: 2303.21,
        p_gpu: Some(605.85),
        bseq: 1746.60,
        bpar: 729.82,
    },
    PaperTableRow {
        k_cpu: 1333.97,
        k_gpu: 189.25,
        p_cpu: 6415.08,
        p_gpu: Some(608.02),
        bseq: 1950.52,
        bpar: 856.44,
    },
    PaperTableRow {
        k_cpu: 16.05,
        k_gpu: 23.66,
        p_cpu: 22.03,
        p_gpu: Some(22.90),
        bseq: 12.77,
        bpar: 9.43,
    },
    PaperTableRow {
        k_cpu: 34.23,
        k_gpu: 28.83,
        p_cpu: 59.74,
        p_gpu: Some(65.52),
        bseq: 39.12,
        bpar: 18.39,
    },
    PaperTableRow {
        k_cpu: 246.11,
        k_gpu: 66.31,
        p_cpu: 504.54,
        p_gpu: Some(531.11),
        bseq: 313.68,
        bpar: 105.17,
    },
    PaperTableRow {
        k_cpu: 2239.56,
        k_gpu: 144.54,
        p_cpu: 3035.85,
        p_gpu: Some(639.58),
        bseq: 3060.31,
        bpar: 1160.42,
    },
    PaperTableRow {
        k_cpu: 26210.06,
        k_gpu: 986.15,
        p_cpu: 32303.64,
        p_gpu: None,
        bseq: 42322.66,
        bpar: 15020.14,
    },
    PaperTableRow {
        k_cpu: 2256.72,
        k_gpu: 166.10,
        p_cpu: 3207.68,
        p_gpu: Some(638.75),
        bseq: 3120.84,
        bpar: 1277.92,
    },
    PaperTableRow {
        k_cpu: 26111.23,
        k_gpu: 1019.34,
        p_cpu: 50828.08,
        p_gpu: None,
        bseq: 41752.00,
        bpar: 13156.51,
    },
    PaperTableRow {
        k_cpu: 2359.49,
        k_gpu: 292.00,
        p_cpu: 6118.97,
        p_gpu: Some(635.27),
        bseq: 3310.15,
        bpar: 1417.83,
    },
    PaperTableRow {
        k_cpu: 26253.30,
        k_gpu: 1157.89,
        p_cpu: 41555.13,
        p_gpu: None,
        bseq: 43156.39,
        bpar: 13741.52,
    },
];

/// Fig. 8 headline speed-ups of B-Par over Keras by layer count.
pub const FIG8_SPEEDUPS: [(usize, f64); 4] = [(2, 1.54), (4, 2.17), (8, 2.38), (12, 2.44)];

/// §IV-B granularity statistics.
pub mod granularity {
    /// Total tasks the paper reports for the granularity scenario.
    pub const TOTAL_TASKS: u64 = 368_240;
    /// Average LSTM-task working set, MB.
    pub const AVG_WORKING_SET_MB: f64 = 4.71;
    /// Minimum task duration, microseconds.
    pub const MIN_TASK_US: f64 = 272.8;
    /// Maximum task duration, microseconds.
    pub const MAX_TASK_US: f64 = 315_178.31;
    /// Average task duration, microseconds.
    pub const AVG_TASK_US: f64 = 13_052.23;
}

/// §IV-B memory-consumption statistics.
pub mod memory {
    /// Working set without per-layer synchronisation, MB.
    pub const BARRIER_FREE_WS_MB: f64 = 75.36;
    /// Working set with per-layer synchronisation, MB.
    pub const BARRIERED_WS_MB: f64 = 28.26;
    /// Average parallel tasks without barriers.
    pub const BARRIER_FREE_TASKS: f64 = 16.0;
    /// Average parallel tasks with barriers.
    pub const BARRIERED_TASKS: f64 = 6.0;
}

/// Fig. 7 headline numbers.
pub mod locality {
    /// Fraction of time at IPC 1.5–2.0, locality-aware.
    pub const IPC_HOT_AWARE: f64 = 0.29;
    /// Fraction of time at IPC 1.5–2.0, locality-oblivious.
    pub const IPC_HOT_OBLIVIOUS: f64 = 0.05;
    /// Fraction of time at 20–30 L3 MPKI, locality-aware.
    pub const MPKI_HIGH_AWARE: f64 = 0.10;
    /// Fraction of time at 20–30 L3 MPKI, locality-oblivious.
    pub const MPKI_HIGH_OBLIVIOUS: f64 = 0.28;
    /// Batch-time reduction from locality-aware scheduling.
    pub const TIME_REDUCTION: f64 = 0.20;
}
