//! Shared driver for the Table III / Table IV experiments.
//!
//! For every model configuration row the driver computes, per the paper's
//! methodology:
//!
//! * **K-CPU / P-CPU** — framework models at their *best* core count
//!   (the paper sweeps 64 inter/intra-thread combinations and reports the
//!   best),
//! * **K-GPU / P-GPU** — the V100 models (`None` when the paper's run
//!   hung),
//! * **B-Seq / B-Par** — simulated task graphs at 48 cores, best over the
//!   mbs sweep,
//!
//! and the B-Par speed-up columns against each framework.

use crate::paper::PaperTableRow;
use crate::{
    bpar_best, brnn_config, bseq_best, ms, ms_opt, print_table, speedup, table_configs, write_json,
    CpuFramework, GpuFramework, Phase, TableConfig,
};
use bpar_core::cell::CellKind;
use bpar_sim::Machine;
use serde::Serialize;

/// Measured (simulated/modelled) values for one table row, milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredRow {
    /// Row configuration.
    pub config: TableConfig,
    /// Trainable-parameter count of the 6-layer model.
    pub params: usize,
    /// Keras-CPU time, ms.
    pub k_cpu: f64,
    /// Keras-GPU time, ms.
    pub k_gpu: f64,
    /// PyTorch-CPU time, ms.
    pub p_cpu: f64,
    /// PyTorch-GPU time, ms (`None` = exceeds the framework's limit).
    pub p_gpu: Option<f64>,
    /// B-Seq time, ms.
    pub bseq: f64,
    /// B-Par time, ms.
    pub bpar: f64,
    /// mbs at which B-Par was fastest.
    pub bpar_mbs: usize,
}

/// Runs the full table for one cell kind and prints/writes the report.
pub fn run_table(cell: CellKind, paper: &[PaperTableRow; 12], name: &str, title: &str) {
    let machine = Machine::xeon_8160();
    let keras = CpuFramework::keras();
    let pytorch = CpuFramework::pytorch();
    let keras_gpu = GpuFramework::keras();
    let pytorch_gpu = GpuFramework::pytorch();

    let mut measured: Vec<MeasuredRow> = Vec::new();
    for tc in table_configs() {
        let cfg = brnn_config(cell, &tc, 6);
        let (k_cpu, _) = keras.best_batch_time(&cfg, tc.batch, &machine, Phase::Training);
        let (p_cpu, _) = pytorch.best_batch_time(&cfg, tc.batch, &machine, Phase::Training);
        let k_gpu = keras_gpu
            .batch_time(&cfg, tc.batch, Phase::Training)
            .expect("Keras-GPU always runs");
        let p_gpu = pytorch_gpu.batch_time(&cfg, tc.batch, Phase::Training);
        let (bseq, _) = bseq_best(&cfg, tc.batch, 48, Phase::Training);
        let (bpar, bpar_mbs) = bpar_best(&cfg, tc.batch, 48, Phase::Training);
        measured.push(MeasuredRow {
            config: tc,
            params: cfg.rnn_param_count(),
            k_cpu: k_cpu * 1e3,
            k_gpu: k_gpu * 1e3,
            p_cpu: p_cpu * 1e3,
            p_gpu: p_gpu.map(|t| t * 1e3),
            bseq: bseq * 1e3,
            bpar: bpar * 1e3,
            bpar_mbs,
        });
        eprint!(".");
    }
    eprintln!();

    // Execution-time table (ours vs paper).
    let headers = [
        "config", "params", "K-CPU", "(paper)", "P-CPU", "(paper)", "K-GPU", "(paper)", "P-GPU",
        "(paper)", "B-Seq", "(paper)", "B-Par", "(paper)", "mbs",
    ];
    let rows: Vec<Vec<String>> = measured
        .iter()
        .zip(paper.iter())
        .map(|(m, p)| {
            vec![
                format!(
                    "{}/{}/{}/{}",
                    m.config.input, m.config.hidden, m.config.batch, m.config.seq
                ),
                format!("{:.1}M", m.params as f64 / 1e6),
                ms(m.k_cpu / 1e3),
                format!("{:.0}", p.k_cpu),
                ms(m.p_cpu / 1e3),
                format!("{:.0}", p.p_cpu),
                ms(m.k_gpu / 1e3),
                format!("{:.0}", p.k_gpu),
                ms_opt(m.p_gpu.map(|v| v / 1e3)),
                p.p_gpu.map(|v| format!("{v:.0}")).unwrap_or("-".into()),
                ms(m.bseq / 1e3),
                format!("{:.0}", p.bseq),
                ms(m.bpar / 1e3),
                format!("{:.0}", p.bpar),
                m.bpar_mbs.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("{title}: batch execution time (ms), ours vs paper"),
        &headers,
        &rows,
    );

    // Speed-up table.
    let headers = [
        "config", "vs K-CPU", "(paper)", "vs P-CPU", "(paper)", "vs K-GPU", "(paper)", "vs P-GPU",
        "(paper)",
    ];
    let rows: Vec<Vec<String>> = measured
        .iter()
        .zip(paper.iter())
        .map(|(m, p)| {
            vec![
                format!(
                    "{}/{}/{}/{}",
                    m.config.input, m.config.hidden, m.config.batch, m.config.seq
                ),
                speedup(m.k_cpu, m.bpar),
                format!("{:.2}x", p.k_cpu / p.bpar),
                speedup(m.p_cpu, m.bpar),
                format!("{:.2}x", p.p_cpu / p.bpar),
                speedup(m.k_gpu, m.bpar),
                format!("{:.2}x", p.k_gpu / p.bpar),
                m.p_gpu
                    .map(|v| speedup(v, m.bpar))
                    .unwrap_or_else(|| "-".into()),
                p.p_gpu
                    .map(|v| format!("{:.2}x", v / p.bpar))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(&format!("{title}: speed-up of B-Par-CPU"), &headers, &rows);

    // Shape summary.
    let wins = measured
        .iter()
        .filter(|m| m.bpar < m.k_cpu && m.bpar < m.p_cpu)
        .count();
    println!(
        "\nShape check: B-Par beats both CPU frameworks in {wins}/12 rows \
         (paper: 12/12)."
    );
    let small = &measured[3]; // 256/256/1/2
    println!(
        "Small-batch GPU crossover: B-Par {} ms vs K-GPU {} ms (paper: 14.9 vs 24.5).",
        ms(small.bpar / 1e3),
        ms(small.k_gpu / 1e3)
    );

    write_json(name, &measured);
}
