//! Property-based tests: the runtime never violates declared dependencies,
//! and the static graph agrees with the live execution order.

use bpar_runtime::graph::TaskNode;
use bpar_runtime::prelude::*;
use bpar_runtime::scheduler::ReadySet;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A randomly generated task access list: (ins, outs) over a small region
/// universe.
#[derive(Debug, Clone)]
struct Access {
    ins: Vec<u64>,
    outs: Vec<u64>,
}

fn accesses(max_tasks: usize, regions: u64) -> impl Strategy<Value = Vec<Access>> {
    let one = (
        proptest::collection::vec(0..regions, 0..3),
        proptest::collection::vec(0..regions, 0..2),
    )
        .prop_map(|(ins, outs)| Access { ins, outs });
    proptest::collection::vec(one, 1..max_tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Execution order respects every dependency edge computed by a
    /// reference DepTracker, and every task runs exactly once, under every
    /// scheduler policy (including work-stealing, where concurrent workers
    /// push to their own deques and steal from each other's) and several
    /// worker counts.
    #[test]
    fn execution_respects_dependencies(
        accs in accesses(60, 6),
        workers in 1usize..5,
        which in 0usize..3,
    ) {
        let policy = [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::LocalityAware,
            SchedulerPolicy::WorkStealing,
        ][which];
        let rt = Runtime::new(RuntimeConfig { workers, policy, record_trace: false });

        // Reference edges.
        let mut tracker = DepTracker::new();
        let mut preds: Vec<Vec<usize>> = Vec::new();
        for (i, a) in accs.iter().enumerate() {
            let ins: Vec<_> = a.ins.iter().map(|&r| RegionId(r)).collect();
            let outs: Vec<_> = a.outs.iter().map(|&r| RegionId(r)).collect();
            let ps = tracker.register(TaskId(i), &ins, &outs);
            preds.push(ps.into_iter().map(|p| p.index()).collect());
        }

        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, a) in accs.iter().enumerate() {
            let o = order.clone();
            let ins: Vec<_> = a.ins.iter().map(|&r| RegionId(r)).collect();
            let outs: Vec<_> = a.outs.iter().map(|&r| RegionId(r)).collect();
            rt.spawn("t", ins, outs, move || {
                o.lock().push(i);
            });
        }
        rt.taskwait().unwrap();

        let order = order.lock();
        // Exactly-once: every submitted task appears exactly one time.
        prop_assert_eq!(order.len(), accs.len());
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), accs.len(), "a task ran twice or not at all");
        let mut position = vec![0usize; accs.len()];
        for (pos, &t) in order.iter().enumerate() {
            position[t] = pos;
        }
        for (t, ps) in preds.iter().enumerate() {
            for &p in ps {
                prop_assert!(
                    position[p] < position[t],
                    "task {} ran before its predecessor {}", t, p
                );
            }
        }
    }

    /// The ReadySet facade itself is exactly-once and lossless under every
    /// policy for arbitrary interleavings of tagged/untagged pushes with
    /// pops issued from arbitrary worker ids (the pure queue-level
    /// counterpart of `execution_respects_dependencies`).
    #[test]
    fn ready_set_is_exactly_once_under_any_interleaving(
        ops in proptest::collection::vec((any::<bool>(), 0usize..4, 0usize..6), 1..200),
        which in 0usize..5,
    ) {
        let policy = [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::LocalityAware,
            SchedulerPolicy::WorkStealing,
            SchedulerPolicy::Adversarial(AdversarialOrder::Reverse),
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(7)),
        ][which];
        let mut rs = ReadySet::new(policy, 4);
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        let mut next = 0usize;
        for (is_push, worker, raw_tag) in ops {
            // raw_tag 5 encodes "untagged"; 4 is an out-of-range worker id.
            let tag = (raw_tag < 5).then_some(raw_tag);
            if is_push {
                rs.push(next, tag);
                pushed.push(next);
                next += 1;
            } else if let Some(t) = rs.pop(worker) {
                popped.push(t);
            }
        }
        while let Some(t) = rs.pop(0) {
            popped.push(t);
        }
        prop_assert!(rs.is_empty());
        popped.sort_unstable();
        prop_assert_eq!(popped, pushed, "pops must be a permutation of pushes");
    }

    /// The static TaskGraph built from the same clauses is a valid DAG whose
    /// critical path is bounded by total work.
    #[test]
    fn static_graph_invariants(accs in accesses(80, 8)) {
        let mut g = TaskGraph::new();
        for (i, a) in accs.iter().enumerate() {
            let ins: Vec<_> = a.ins.iter().map(|&r| RegionId(r)).collect();
            let outs: Vec<_> = a.outs.iter().map(|&r| RegionId(r)).collect();
            g.add_task(TaskNode::new("t").tag(i as u64).flops(1 + i as u64), &ins, &outs);
        }
        g.validate().unwrap();
        let cost = |n: &TaskNode| n.flops as f64;
        let cp = g.critical_path(cost);
        let work = g.total_work(cost);
        prop_assert!(cp <= work + 1e-9);
        prop_assert!(g.max_width() >= 1);
        prop_assert!(g.max_width() <= g.len());
        // Any non-empty graph has at least one root and one sink.
        prop_assert!(!g.roots().is_empty());
        prop_assert!(!g.sinks().is_empty());
    }

    /// Stats conservation: sum of task durations is at least the makespan
    /// when one worker runs everything (no overlap possible).
    #[test]
    fn single_worker_has_no_overlap(n in 1usize..20) {
        let rt = Runtime::new(RuntimeConfig { workers: 1, ..Default::default() });
        for i in 0..n as u64 {
            rt.spawn("t", [], [RegionId(i)], || {
                std::hint::black_box((0..1000).sum::<u64>());
            });
        }
        rt.taskwait().unwrap();
        let s = rt.stats();
        prop_assert_eq!(s.tasks, n);
        prop_assert_eq!(s.peak_concurrency, 1);
    }
}
