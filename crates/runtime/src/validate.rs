//! Dynamic clause validation: recording what task bodies *actually* touch.
//!
//! B-Par's barrier-free correctness argument rests entirely on the
//! `in`/`out` clauses declared at task creation being a faithful superset
//! of the regions each body touches at run time. Nothing in the dependency
//! protocol can check that — a builder bug that forgets one region
//! compiles, passes submission-order-biased tests, and only corrupts
//! results under a different schedule.
//!
//! This module provides the observation half of the check: an
//! [`AccessRecorder`] installed on a [`crate::Runtime`] via
//! [`crate::Runtime::set_validation`]. While a recorder is installed, the
//! worker loop surrounds every task body with a [`TaskScope`] that notes
//! which task is executing on the current thread; region-guarded data
//! structures (e.g. the slot buffers in `bpar-core`'s graph builder) call
//! [`record_read`] / [`record_write`] on every access, and the events land
//! in the recorder attributed to the right task regardless of which worker
//! ran it.
//!
//! When no recorder is installed the cost per access is one relaxed atomic
//! load — validation mode is strictly opt-in.
//!
//! The comparison half (diffing observed accesses against declared
//! clauses) lives in `bpar-verify`, which consumes the
//! [`AccessRecorder::take_events`] log together with
//! [`crate::CompiledPlan`] introspection.

use crate::region::RegionId;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How a task body touched a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// The body observed the region's value (shared read; also covers
    /// consuming reads such as `take`).
    Read,
    /// The body stored or mutated the region's value.
    Write,
}

/// One observed access, attributed to the task that performed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Index of the task (plan/submission index) that touched the region.
    pub task: usize,
    /// The region touched.
    pub region: RegionId,
    /// Read or write.
    pub kind: AccessKind,
}

/// Collects [`AccessEvent`]s from task bodies across all worker threads.
#[derive(Debug, Default)]
pub struct AccessRecorder {
    events: Mutex<Vec<AccessEvent>>,
}

impl AccessRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, task: usize, region: RegionId, kind: AccessKind) {
        self.events.lock().push(AccessEvent { task, region, kind });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Removes and returns the recorded events, sorted by (task, region,
    /// kind) so downstream reports are deterministic regardless of worker
    /// interleaving.
    pub fn take_events(&self) -> Vec<AccessEvent> {
        let mut ev = std::mem::take(&mut *self.events.lock());
        ev.sort_unstable_by_key(|e| (e.task, e.region, e.kind));
        ev.dedup();
        ev
    }
}

/// Whether *any* runtime currently has a recorder installed; lets
/// [`record_read`]/[`record_write`] exit on one relaxed load in the
/// (overwhelmingly common) validation-off case before touching TLS.
static VALIDATION_ACTIVE: AtomicBool = AtomicBool::new(false);

/// How many runtimes currently have a recorder installed (guards the flag
/// against one runtime disabling validation while another still records).
static VALIDATION_USERS: Mutex<usize> = Mutex::new(0);

pub(crate) fn validation_installed(installed: bool) {
    let mut users = VALIDATION_USERS.lock();
    if installed {
        *users += 1;
    } else {
        *users = users.saturating_sub(1);
    }
    VALIDATION_ACTIVE.store(*users > 0, Ordering::Release);
}

thread_local! {
    /// (recorder, task index) for the task body running on this thread.
    static CURRENT: Cell<Option<(*const AccessRecorder, usize)>> = const { Cell::new(None) };
}

/// RAII guard naming the task whose body runs on the current thread.
///
/// Installed by the runtime's worker loop around each body while a
/// recorder is set. Holds an `Arc` so the raw pointer stored in TLS stays
/// valid for the guard's lifetime; scopes may nest (a body that
/// synchronously runs another body restores the outer attribution on
/// drop).
pub struct TaskScope {
    _recorder: Arc<AccessRecorder>,
    prev: Option<(*const AccessRecorder, usize)>,
}

impl TaskScope {
    /// Attributes subsequent [`record_read`]/[`record_write`] calls on
    /// this thread to `task` until the guard drops.
    pub fn enter(recorder: Arc<AccessRecorder>, task: usize) -> Self {
        let prev = CURRENT.with(|c| c.replace(Some((Arc::as_ptr(&recorder), task))));
        Self {
            _recorder: recorder,
            prev,
        }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

fn record(region: RegionId, kind: AccessKind) {
    if !VALIDATION_ACTIVE.load(Ordering::Acquire) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((rec, task)) = c.get() {
            // Safety: the pointer was stored by a live `TaskScope`, which
            // keeps its recorder alive until the TLS slot is restored.
            unsafe { &*rec }.record(task, region, kind);
        }
    });
}

/// Notes that the running task body read `region`. No-op outside a
/// [`TaskScope`] or when validation is off.
pub fn record_read(region: RegionId) {
    record(region, AccessKind::Read);
}

/// Notes that the running task body wrote `region`. No-op outside a
/// [`TaskScope`] or when validation is off.
pub fn record_write(region: RegionId) {
    record(region, AccessKind::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn records_are_attributed_and_sorted() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        {
            let _scope = TaskScope::enter(rec.clone(), 7);
            record_write(r(2));
            record_read(r(1));
            record_read(r(1)); // duplicate collapses
        }
        {
            let _scope = TaskScope::enter(rec.clone(), 3);
            record_read(r(9));
        }
        validation_installed(false);
        let ev = rec.take_events();
        assert_eq!(
            ev,
            vec![
                AccessEvent {
                    task: 3,
                    region: r(9),
                    kind: AccessKind::Read
                },
                AccessEvent {
                    task: 7,
                    region: r(1),
                    kind: AccessKind::Read
                },
                AccessEvent {
                    task: 7,
                    region: r(2),
                    kind: AccessKind::Write
                },
            ]
        );
        assert!(rec.is_empty(), "take_events drains");
    }

    #[test]
    fn no_scope_means_no_event() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        record_read(r(1)); // outside any scope: dropped
        validation_installed(false);
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        {
            let _outer = TaskScope::enter(rec.clone(), 1);
            {
                let _inner = TaskScope::enter(rec.clone(), 2);
                record_read(r(5));
            }
            record_read(r(6)); // back to task 1
        }
        validation_installed(false);
        let ev = rec.take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].task, ev[0].region), (1, r(6)));
        assert_eq!((ev[1].task, ev[1].region), (2, r(5)));
    }

    #[test]
    fn validation_off_is_a_noop() {
        let rec = Arc::new(AccessRecorder::new());
        let _scope = TaskScope::enter(rec.clone(), 0);
        record_write(r(1));
        // VALIDATION_ACTIVE was never raised by this test; other tests
        // raise and lower it in a balanced way, so this is usually a
        // no-op path. (If a concurrently running test has it raised the
        // event is attributed to task 0 of `rec`, which stays private to
        // this test either way.)
        let _ = rec.take_events();
    }
}
