//! Dynamic clause validation: recording what task bodies *actually* touch.
//!
//! B-Par's barrier-free correctness argument rests entirely on the
//! `in`/`out` clauses declared at task creation being a faithful superset
//! of the regions each body touches at run time. Nothing in the dependency
//! protocol can check that — a builder bug that forgets one region
//! compiles, passes submission-order-biased tests, and only corrupts
//! results under a different schedule.
//!
//! This module provides the observation half of the check: an
//! [`AccessRecorder`] installed on a [`crate::Runtime`] via
//! [`crate::Runtime::set_validation`]. While a recorder is installed, the
//! worker loop surrounds every task body with a [`TaskScope`] that notes
//! which task is executing on the current thread; region-guarded data
//! structures (e.g. the slot buffers in `bpar-core`'s graph builder) call
//! [`record_read`] / [`record_write`] on every access, and the events land
//! in the recorder attributed to the right task regardless of which worker
//! ran it.
//!
//! ## Sharding and determinism
//!
//! Events are pushed into **per-worker shards** (each its own mutex), so
//! validation mode no longer serialises all workers on one global lock:
//! with fewer workers than shards every push is uncontended. Shards are
//! flushed into the primary log at each [`crate::Runtime::taskwait`]
//! barrier (which also advances the recorder's *epoch* — see below) and by
//! [`AccessRecorder::take_events`].
//!
//! Determinism no longer comes from sorting by region: each event carries
//! a **per-task sequence number** (`seq`), assigned in body program order
//! on whichever worker runs the task. A task body is sequential and runs
//! exactly once per replay, so `(epoch, task, seq)` is a total order
//! independent of worker interleaving — `take_events` sorts by it.
//!
//! Each event also carries:
//!
//! * `epoch` — how many taskwait barriers the recorder had seen when the
//!   event was recorded. The happens-before engine in `bpar-verify` treats
//!   accesses from different epochs as barrier-ordered.
//! * `site` — an opaque physical-site id (for slot-backed regions, the
//!   address of the backing cell via [`record_read_at`] /
//!   [`record_write_at`]; otherwise the region id). Two events alias the
//!   same storage iff their sites are equal, even if a builder bug gave
//!   the storage two different region ids. Sites are process-local and
//!   must never be serialised into reports.
//!
//! When no recorder is installed the cost per access is one relaxed atomic
//! load — validation mode is strictly opt-in.
//!
//! The comparison half (diffing observed accesses against declared
//! clauses, happens-before race checking, schedule exploration) lives in
//! `bpar-verify`, which consumes the [`AccessRecorder::take_events`] log
//! together with [`crate::CompiledPlan`] introspection.

use crate::region::RegionId;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// How a task body touched a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// The body observed the region's value (shared read; also covers
    /// consuming reads such as `take`).
    Read,
    /// The body stored or mutated the region's value.
    Write,
}

/// One observed access, attributed to the task that performed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Index of the task (plan/submission index) that touched the region.
    pub task: usize,
    /// The region touched.
    pub region: RegionId,
    /// Read or write.
    pub kind: AccessKind,
    /// Position of this access within its task body (program order).
    /// Assigned per task execution, so it is schedule-independent.
    pub seq: u32,
    /// Taskwait-barrier count at recording time. Events from different
    /// epochs are ordered by the barrier between them.
    pub epoch: u32,
    /// Opaque physical-site id: equal sites alias the same storage.
    /// Process-local (may be an address) — never serialise it.
    pub site: u64,
}

impl AccessEvent {
    /// Event with default ordering metadata (`seq`/`epoch` zero, site
    /// derived from the region id). Mainly for tests and synthetic logs.
    pub fn new(task: usize, region: RegionId, kind: AccessKind) -> Self {
        Self {
            task,
            region,
            kind,
            seq: 0,
            epoch: 0,
            site: region.0,
        }
    }
}

/// Default shard count; workers index shards modulo this, so any pool of
/// up to 16 workers records contention-free.
const DEFAULT_SHARDS: usize = 16;

/// Collects [`AccessEvent`]s from task bodies across all worker threads.
#[derive(Debug)]
pub struct AccessRecorder {
    /// Per-worker event buffers (worker index modulo shard count).
    shards: Box<[Mutex<Vec<AccessEvent>>]>,
    /// Events migrated out of the shards at the last flush.
    primary: Mutex<Vec<AccessEvent>>,
    /// Taskwait-barrier count stamped into every event.
    epoch: AtomicU32,
}

impl Default for AccessRecorder {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl AccessRecorder {
    /// Empty recorder with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty recorder with `shards` per-worker buffers (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            primary: Mutex::new(Vec::new()),
            epoch: AtomicU32::new(0),
        }
    }

    fn record(&self, shard: usize, event: AccessEvent) {
        self.shards[shard % self.shards.len()].lock().push(event);
    }

    /// The current taskwait-barrier count.
    pub fn current_epoch(&self) -> u32 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Drains every worker shard into the primary log (no ordering work).
    pub fn flush(&self) {
        let mut primary = self.primary.lock();
        for shard in self.shards.iter() {
            primary.append(&mut shard.lock());
        }
    }

    /// Taskwait hook: flushes the shards and advances the epoch, so events
    /// recorded after the barrier are distinguishable from those before.
    /// Called by [`crate::Runtime::taskwait`] while a recorder is
    /// installed; callers driving recording by hand may call it directly.
    pub fn barrier(&self) {
        self.flush();
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.primary.lock().len() + self.shards.iter().map(|s| s.lock().len()).sum::<usize>()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns the recorded events, sorted by `(epoch, task,
    /// seq)` — a schedule-independent total order — so downstream reports
    /// are deterministic regardless of worker interleaving. The epoch
    /// counter is *not* reset; install-to-take windows stay comparable.
    pub fn take_events(&self) -> Vec<AccessEvent> {
        self.flush();
        let mut ev = std::mem::take(&mut *self.primary.lock());
        ev.sort_unstable_by_key(|e| (e.epoch, e.task, e.seq));
        ev
    }
}

/// Whether *any* runtime currently has a recorder installed; lets
/// [`record_read`]/[`record_write`] exit on one relaxed load in the
/// (overwhelmingly common) validation-off case before touching TLS.
static VALIDATION_ACTIVE: AtomicBool = AtomicBool::new(false);

/// How many runtimes currently have a recorder installed (guards the flag
/// against one runtime disabling validation while another still records).
static VALIDATION_USERS: Mutex<usize> = Mutex::new(0);

pub(crate) fn validation_installed(installed: bool) {
    let mut users = VALIDATION_USERS.lock();
    if installed {
        *users += 1;
    } else {
        *users = users.saturating_sub(1);
    }
    VALIDATION_ACTIVE.store(*users > 0, Ordering::Release);
}

thread_local! {
    /// (recorder, task index, shard index) for the task body running on
    /// this thread.
    static CURRENT: Cell<Option<(*const AccessRecorder, usize, usize)>> = const { Cell::new(None) };
    /// Per-task access counter; reset on scope entry, restored on drop.
    static SEQ: Cell<u32> = const { Cell::new(0) };
}

/// Task index currently attributed on this thread, if a [`TaskScope`] is
/// live (used by the lock-witness hooks to lint task bodies that block on
/// runtime-internal locks).
pub(crate) fn current_task() -> Option<usize> {
    CURRENT.with(|c| c.get().map(|(_, task, _)| task))
}

/// RAII guard naming the task whose body runs on the current thread.
///
/// Installed by the runtime's worker loop around each body while a
/// recorder is set. Holds an `Arc` so the raw pointer stored in TLS stays
/// valid for the guard's lifetime; scopes may nest (a body that
/// synchronously runs another body restores the outer attribution on
/// drop).
pub struct TaskScope {
    _recorder: Arc<AccessRecorder>,
    prev: Option<(*const AccessRecorder, usize, usize)>,
    prev_seq: u32,
}

impl TaskScope {
    /// Attributes subsequent [`record_read`]/[`record_write`] calls on
    /// this thread to `task` until the guard drops, recording into shard
    /// 0. Prefer [`TaskScope::enter_on`] inside a worker pool.
    pub fn enter(recorder: Arc<AccessRecorder>, task: usize) -> Self {
        Self::enter_on(recorder, task, 0)
    }

    /// Like [`TaskScope::enter`], but events land in `worker`'s shard so
    /// concurrent workers never contend on one buffer.
    pub fn enter_on(recorder: Arc<AccessRecorder>, task: usize, worker: usize) -> Self {
        let prev = CURRENT.with(|c| c.replace(Some((Arc::as_ptr(&recorder), task, worker))));
        let prev_seq = SEQ.with(|s| s.replace(0));
        Self {
            _recorder: recorder,
            prev,
            prev_seq,
        }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        SEQ.with(|s| s.set(self.prev_seq));
    }
}

fn record(region: RegionId, kind: AccessKind, site: u64) {
    if !VALIDATION_ACTIVE.load(Ordering::Acquire) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((rec, task, shard)) = c.get() {
            let seq = SEQ.with(|s| {
                let v = s.get();
                s.set(v.wrapping_add(1));
                v
            });
            // SAFETY: the pointer was stored by a live `TaskScope`, which
            // keeps its recorder alive until the TLS slot is restored.
            let rec = unsafe { &*rec };
            let epoch = rec.current_epoch();
            rec.record(
                shard,
                AccessEvent {
                    task,
                    region,
                    kind,
                    seq,
                    epoch,
                    site,
                },
            );
        }
    });
}

/// Notes that the running task body read `region`. No-op outside a
/// [`TaskScope`] or when validation is off. The event's site defaults to
/// the region id; storage-backed callers should prefer
/// [`record_read_at`].
pub fn record_read(region: RegionId) {
    record(region, AccessKind::Read, region.0);
}

/// Notes that the running task body wrote `region` (site defaults to the
/// region id; see [`record_write_at`]).
pub fn record_write(region: RegionId) {
    record(region, AccessKind::Write, region.0);
}

/// [`record_read`] with an explicit physical-site id (e.g. the address of
/// the backing cell), letting the analysis detect two region ids aliasing
/// one piece of storage.
pub fn record_read_at(region: RegionId, site: u64) {
    record(region, AccessKind::Read, site);
}

/// [`record_write`] with an explicit physical-site id (see
/// [`record_read_at`]).
pub fn record_write_at(region: RegionId, site: u64) {
    record(region, AccessKind::Write, site);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn records_are_attributed_and_ordered_by_task_seq() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        {
            let _scope = TaskScope::enter_on(rec.clone(), 7, 1);
            record_write(r(2));
            record_read(r(1));
            record_read(r(1)); // repeated access is preserved, seq disambiguates
        }
        {
            let _scope = TaskScope::enter_on(rec.clone(), 3, 0);
            record_read(r(9));
        }
        validation_installed(false);
        let ev = rec.take_events();
        let key: Vec<_> = ev
            .iter()
            .map(|e| (e.task, e.region, e.kind, e.seq))
            .collect();
        assert_eq!(
            key,
            vec![
                (3, r(9), AccessKind::Read, 0),
                (7, r(2), AccessKind::Write, 0),
                (7, r(1), AccessKind::Read, 1),
                (7, r(1), AccessKind::Read, 2),
            ]
        );
        assert!(ev.iter().all(|e| e.epoch == 0));
        // Default sites mirror the region id.
        assert!(ev.iter().all(|e| e.site == e.region.0));
        assert!(rec.is_empty(), "take_events drains");
    }

    #[test]
    fn explicit_sites_survive_into_events() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        {
            let _scope = TaskScope::enter(rec.clone(), 0);
            record_write_at(r(1), 0xDEAD);
            record_read_at(r(2), 0xDEAD); // different region, same storage
        }
        validation_installed(false);
        let ev = rec.take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].region, ev[0].site), (r(1), 0xDEAD));
        assert_eq!((ev[1].region, ev[1].site), (r(2), 0xDEAD));
    }

    #[test]
    fn barrier_advances_epoch_and_flushes_shards() {
        let rec = Arc::new(AccessRecorder::with_shards(4));
        validation_installed(true);
        {
            let _scope = TaskScope::enter_on(rec.clone(), 0, 3);
            record_write(r(1));
        }
        rec.barrier();
        {
            let _scope = TaskScope::enter_on(rec.clone(), 0, 2);
            record_write(r(1));
        }
        validation_installed(false);
        assert_eq!(rec.current_epoch(), 1);
        let ev = rec.take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].epoch, ev[1].epoch), (0, 1));
        // Same task, same seq — the epoch is what orders them.
        assert_eq!((ev[0].seq, ev[1].seq), (0, 0));
    }

    #[test]
    fn shard_count_does_not_change_take_events_order() {
        let run = |shards: usize| {
            let rec = Arc::new(AccessRecorder::with_shards(shards));
            validation_installed(true);
            for (task, worker) in [(5usize, 0usize), (2, 1), (9, 2)] {
                let _scope = TaskScope::enter_on(rec.clone(), task, worker);
                record_write(r(task as u64));
                record_read(r(0));
            }
            validation_installed(false);
            rec.take_events()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn no_scope_means_no_event() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        record_read(r(1)); // outside any scope: dropped
        validation_installed(false);
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let rec = Arc::new(AccessRecorder::new());
        validation_installed(true);
        {
            let _outer = TaskScope::enter(rec.clone(), 1);
            record_read(r(4));
            {
                let _inner = TaskScope::enter(rec.clone(), 2);
                record_read(r(5));
            }
            record_read(r(6)); // back to task 1, seq continues after 0
        }
        validation_installed(false);
        let ev = rec.take_events();
        assert_eq!(ev.len(), 3);
        assert_eq!((ev[0].task, ev[0].region, ev[0].seq), (1, r(4), 0));
        assert_eq!((ev[1].task, ev[1].region, ev[1].seq), (1, r(6), 1));
        assert_eq!((ev[2].task, ev[2].region, ev[2].seq), (2, r(5), 0));
    }

    #[test]
    fn validation_off_is_a_noop() {
        let rec = Arc::new(AccessRecorder::new());
        let _scope = TaskScope::enter(rec.clone(), 0);
        record_write(r(1));
        // VALIDATION_ACTIVE was never raised by this test; other tests
        // raise and lower it in a balanced way, so this is usually a
        // no-op path. (If a concurrently running test has it raised the
        // event is attributed to task 0 of `rec`, which stays private to
        // this test either way.)
        let _ = rec.take_events();
    }
}
