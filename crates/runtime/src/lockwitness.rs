//! Lock-order witnessing for the runtime's internal locks.
//!
//! ROADMAP item 4 (work-stealing deques, wait-free ready paths) will
//! replace the runtime's single-lock discipline with something much finer
//! grained. Before that migration starts we want a machine-checked
//! baseline of the discipline we have: which internal locks exist, in
//! which orders they nest, and the invariant that **task bodies never
//! block on a runtime-internal lock** (bodies run with the central lock
//! dropped — a body that re-enters it is either an embedder bug or a
//! future scheduler bug).
//!
//! [`WitnessedMutex`] wraps `parking_lot::Mutex` with a static name. While
//! a [`LockWitness`] is [`install`]ed, every acquisition records:
//!
//! * an **acquisition-order edge** `(held, acquired)` for each lock the
//!   thread already holds — the per-thread lock-order graph. A cycle in
//!   the union of these edges is a potential deadlock
//!   (`bpar-verify::locks` does the cycle detection);
//! * a **task acquisition** `(task, lock)` whenever the acquiring thread
//!   is inside a [`crate::validate::TaskScope`] — i.e. a task body blocked
//!   on a runtime-internal lock.
//!
//! With no witness installed the cost per acquisition is one relaxed
//! atomic load, same opt-in pattern as validation and fault injection.
//! Condvar waits re-acquire the same lock the thread already nominally
//! holds, which cannot introduce a *new* ordering edge, so
//! [`WitnessedGuard::wait`] leaves the held-set untouched.

use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Accumulates lock-order observations across all threads.
#[derive(Debug, Default)]
pub struct LockWitness {
    /// `(held, acquired)` pairs: the thread held the first lock while
    /// acquiring the second.
    edges: Mutex<BTreeSet<(&'static str, &'static str)>>,
    /// `(task index, lock)` pairs: a task body acquired a runtime lock.
    task_acquisitions: Mutex<BTreeSet<(usize, &'static str)>>,
}

impl LockWitness {
    /// Empty witness.
    pub fn new() -> Self {
        Self::default()
    }

    /// The observed acquisition-order edges, sorted (BTreeSet order).
    pub fn edges(&self) -> Vec<(&'static str, &'static str)> {
        self.edges.lock().iter().copied().collect()
    }

    /// The observed task-body acquisitions, sorted.
    pub fn task_acquisitions(&self) -> Vec<(usize, &'static str)> {
        self.task_acquisitions.lock().iter().copied().collect()
    }

    fn note_acquire(&self, held: &[&'static str], acquired: &'static str) {
        if !held.is_empty() {
            let mut edges = self.edges.lock();
            for &h in held {
                if h != acquired {
                    edges.insert((h, acquired));
                }
            }
        }
        if let Some(task) = crate::validate::current_task() {
            self.task_acquisitions.lock().insert((task, acquired));
        }
    }
}

/// Whether a witness is installed; keeps the witness-off fast path at one
/// relaxed load per acquisition.
static WITNESS_ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed witness (global: the locks it observes are themselves
/// global statics or live inside arbitrarily many runtimes).
static WITNESS: Mutex<Option<Arc<LockWitness>>> = Mutex::new(None);

/// Installs (or removes, with `None`) the process-wide lock witness.
/// Observation windows are meant to be short and exclusive — install, run
/// the workload under test, read the witness back, uninstall.
pub fn install(witness: Option<Arc<LockWitness>>) {
    let mut slot = WITNESS.lock();
    WITNESS_ACTIVE.store(witness.is_some(), Ordering::Release);
    *slot = witness;
}

thread_local! {
    /// Names of witnessed locks currently held by this thread.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Records the acquisition in the installed witness (if any) and pushes
/// `name` onto the thread's held-set. Returns whether the held-set was
/// touched, so the guard knows to pop on drop.
fn on_acquire(name: &'static str) -> bool {
    if !WITNESS_ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    let witness = WITNESS.lock().clone();
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(w) = &witness {
            w.note_acquire(&held, name);
        }
        held.push(name);
    });
    true
}

fn on_release(name: &'static str) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&n| n == name) {
            held.remove(pos);
        }
    });
}

/// A named `parking_lot::Mutex` whose acquisitions are observable by the
/// installed [`LockWitness`].
#[derive(Debug)]
pub struct WitnessedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> WitnessedMutex<T> {
    /// A witnessed mutex carrying `name` in every observation.
    pub const fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The lock's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recording order edges against locks this thread
    /// already holds while a witness is installed.
    pub fn lock(&self) -> WitnessedGuard<'_, T> {
        let tracked = on_acquire(self.name);
        WitnessedGuard {
            guard: self.inner.lock(),
            name: self.name,
            tracked,
        }
    }
}

/// Guard returned by [`WitnessedMutex::lock`].
pub struct WitnessedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    name: &'static str,
    tracked: bool,
}

impl<T> WitnessedGuard<'_, T> {
    /// Blocks on `cv` releasing and re-acquiring the underlying mutex —
    /// the witnessed replacement for `Condvar::wait(&mut guard)`. The
    /// held-set is left untouched (see module docs).
    pub fn wait(&mut self, cv: &Condvar) {
        cv.wait(&mut self.guard);
    }
}

impl<T> std::ops::Deref for WitnessedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for WitnessedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for WitnessedGuard<'_, T> {
    fn drop(&mut self) {
        if self.tracked {
            on_release(self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The witness slot is process-global, so tests that install one must
    // not run concurrently with each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_acquisitions_record_order_edges() {
        let _serial = SERIAL.lock();
        let a = WitnessedMutex::new("test.lock_a", 0u32);
        let b = WitnessedMutex::new("test.lock_b", 0u32);
        let w = Arc::new(LockWitness::new());
        install(Some(w.clone()));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a held while acquiring b
        }
        install(None);
        assert!(w.edges().contains(&("test.lock_a", "test.lock_b")));
        assert!(!w.edges().contains(&("test.lock_b", "test.lock_a")));
    }

    #[test]
    fn reversed_nesting_records_the_cycle_edges() {
        let _serial = SERIAL.lock();
        let a = WitnessedMutex::new("test.cycle_a", ());
        let b = WitnessedMutex::new("test.cycle_b", ());
        let w = Arc::new(LockWitness::new());
        install(Some(w.clone()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        install(None);
        let edges = w.edges();
        assert!(edges.contains(&("test.cycle_a", "test.cycle_b")));
        assert!(edges.contains(&("test.cycle_b", "test.cycle_a")));
    }

    #[test]
    fn single_lock_records_no_edges() {
        let _serial = SERIAL.lock();
        let a = WitnessedMutex::new("test.single", ());
        let w = Arc::new(LockWitness::new());
        install(Some(w.clone()));
        drop(a.lock());
        drop(a.lock());
        install(None);
        assert!(w.edges().is_empty());
    }

    #[test]
    fn task_scope_acquisitions_are_attributed() {
        use crate::validate::{AccessRecorder, TaskScope};
        let _serial = SERIAL.lock();
        let a = WitnessedMutex::new("test.body_lock", ());
        let w = Arc::new(LockWitness::new());
        install(Some(w.clone()));
        {
            let rec = Arc::new(AccessRecorder::new());
            let _scope = TaskScope::enter(rec, 42);
            drop(a.lock());
        }
        drop(a.lock()); // outside any task scope: not attributed
        install(None);
        assert_eq!(w.task_acquisitions(), vec![(42, "test.body_lock")]);
    }

    #[test]
    fn no_witness_means_no_tracking() {
        let _serial = SERIAL.lock();
        install(None);
        let a = WitnessedMutex::new("test.untracked", 5u32);
        assert_eq!(*a.lock(), 5);
    }
}
