//! Task identifiers and submission specifications.

use crate::region::RegionId;

/// Dense, monotonically increasing task identifier.
///
/// Tasks are numbered in submission (i.e. topological-creation) order, which
/// is the order Algorithms 2 and 3 of the paper create them in. Dependency
/// edges therefore always point from a lower id to a higher id, which makes
/// the task graph acyclic *by construction*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Index into dense per-task arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A task submission: dependency clauses plus the sequential body.
///
/// Mirrors the paper's pragma annotation
/// `#pragma omp task in(c[..]) out(c[..])` followed by the call to
/// `FwdBwdComputations`. Construction uses a builder style:
///
/// ```
/// # use bpar_runtime::task::TaskSpec;
/// # use bpar_runtime::region::RegionId;
/// let spec = TaskSpec::new("lstm_fwd")
///     .tag(42)
///     .ins([RegionId(1), RegionId(2)])
///     .outs([RegionId(3)])
///     .working_set(4 << 20)
///     .body(|| { /* algebraic operations of one RNN cell */ });
/// ```
pub struct TaskSpec {
    /// Human-readable task kind (e.g. `"lstm_fwd"`, `"merge"`).
    pub label: &'static str,
    /// Free-form numeric tag for the client (cell index, layer, …).
    pub tag: u64,
    /// Regions read by the task (`in` clause).
    pub ins: Vec<RegionId>,
    /// Regions written by the task (`out` clause).
    pub outs: Vec<RegionId>,
    /// Approximate bytes the task touches; feeds working-set accounting
    /// (§IV-B memory-consumption experiment) and the simulator cost model.
    pub working_set_bytes: usize,
    /// The sequential piece of work.
    pub body: Option<Box<dyn FnOnce() + Send + 'static>>,
}

impl TaskSpec {
    /// New spec with the given label and no dependencies.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            tag: 0,
            ins: Vec::new(),
            outs: Vec::new(),
            working_set_bytes: 0,
            body: None,
        }
    }

    /// Attaches a client tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Adds input (read) dependencies.
    pub fn ins(mut self, regions: impl IntoIterator<Item = RegionId>) -> Self {
        self.ins.extend(regions);
        self
    }

    /// Adds output (write) dependencies.
    pub fn outs(mut self, regions: impl IntoIterator<Item = RegionId>) -> Self {
        self.outs.extend(regions);
        self
    }

    /// Records the task's approximate working-set size in bytes.
    pub fn working_set(mut self, bytes: usize) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Sets the sequential body.
    pub fn body(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.body = Some(Box::new(f));
        self
    }
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("label", &self.label)
            .field("tag", &self.tag)
            .field("ins", &self.ins)
            .field("outs", &self.outs)
            .field("working_set_bytes", &self.working_set_bytes)
            .field("has_body", &self.body.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_clauses() {
        let s = TaskSpec::new("t")
            .tag(9)
            .ins([RegionId(1)])
            .ins([RegionId(2)])
            .outs([RegionId(3)])
            .working_set(128)
            .body(|| {});
        assert_eq!(s.label, "t");
        assert_eq!(s.tag, 9);
        assert_eq!(s.ins, vec![RegionId(1), RegionId(2)]);
        assert_eq!(s.outs, vec![RegionId(3)]);
        assert_eq!(s.working_set_bytes, 128);
        assert!(s.body.is_some());
    }

    #[test]
    fn task_ids_order_like_indices() {
        assert!(TaskId(3) < TaskId(7));
        assert_eq!(TaskId(5).index(), 5);
    }

    #[test]
    fn debug_omits_body() {
        let s = TaskSpec::new("x").body(|| {});
        let d = format!("{s:?}");
        assert!(d.contains("has_body: true"));
    }
}
