//! Dependency regions and OmpSs-style edge computation.
//!
//! A *region* is an abstract memory object a task may read (`in` clause) or
//! write (`out` clause) — in the paper these are elements of the `c_f`/`c_r`
//! operation arrays indexed through `start_*`/`end_*`. The [`DepTracker`]
//! turns the per-task access lists into dependency edges with the standard
//! semantics:
//!
//! * **RAW** — a reader depends on the last writer of the region,
//! * **WAW** — a writer depends on the previous writer,
//! * **WAR** — a writer depends on every reader since the previous write.
//!
//! Because tasks are registered in submission order, every edge points from
//! an earlier task to a later one and the resulting graph is acyclic by
//! construction.

use crate::task::TaskId;
use std::collections::HashMap;

/// Identifier of a dependency region (an abstract memory object).
///
/// Clients allocate ids themselves; ids need not be dense. `bpar-core`
/// derives them from (cell, slot) coordinates of the unrolled network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

/// Last-writer / readers-since-last-write state for one region.
#[derive(Debug, Default, Clone)]
struct RegionState {
    last_writer: Option<TaskId>,
    readers: Vec<TaskId>,
}

/// Incremental dependency-edge computation.
///
/// Feed tasks in submission order via [`DepTracker::register`]; it returns
/// the deduplicated list of predecessor tasks the new task must wait for.
/// Task ids must be registered in strictly increasing order; debug builds
/// assert this, so stale state from a previous graph (forgotten
/// [`DepTracker::reset`]) is caught at the first re-registration.
#[derive(Debug, Default)]
pub struct DepTracker {
    regions: HashMap<RegionId, RegionState>,
    /// Highest task id registered since the last reset.
    watermark: Option<TaskId>,
}

impl DepTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task's accesses and returns its predecessors.
    ///
    /// A region appearing in both `ins` and `outs` behaves like an OmpSs
    /// `inout`: the task gets RAW/WAW/WAR edges and becomes the region's
    /// new last writer.
    pub fn register(&mut self, task: TaskId, ins: &[RegionId], outs: &[RegionId]) -> Vec<TaskId> {
        debug_assert!(
            self.watermark.is_none_or(|w| task > w),
            "task ids must increase monotonically (got {task:?} after {:?}); \
             call reset() between graphs",
            self.watermark
        );
        self.watermark = Some(task);
        let mut preds: Vec<TaskId> = Vec::new();

        for &r in ins {
            let st = self.regions.entry(r).or_default();
            if let Some(w) = st.last_writer {
                preds.push(w); // RAW
            }
            // A region listed twice in `ins` (or revisited because the
            // clause list carries duplicates) must not bloat the WAR edge
            // list: all pushes for one task are consecutive, so checking
            // the tail deduplicates readers per region per task.
            if st.readers.last() != Some(&task) {
                st.readers.push(task);
            }
        }
        for &r in outs {
            let st = self.regions.entry(r).or_default();
            if let Some(w) = st.last_writer {
                preds.push(w); // WAW
            }
            for &rd in &st.readers {
                if rd != task {
                    preds.push(rd); // WAR
                }
            }
            st.last_writer = Some(task);
            st.readers.clear();
        }

        preds.sort_unstable();
        preds.dedup();
        // A task never depends on itself (possible when a region is inout).
        preds.retain(|&p| p != task);
        preds
    }

    /// Number of regions ever touched.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of reader entries currently tracked across all regions
    /// (WAR bookkeeping size; readers are deduplicated per task).
    pub fn reader_entries(&self) -> usize {
        self.regions.values().map(|st| st.readers.len()).sum()
    }

    /// Forgets all state so the tracker can be reused for a new graph:
    /// last-writer/reader state is dropped (region ids may be reused) and
    /// task ids may restart from zero. Without this, stale last-writer
    /// entries from a previous compiled plan would leak edges into the
    /// next one.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.watermark = None;
    }

    /// Alias of [`DepTracker::reset`] (historical name, used between
    /// batches when region ids are reused).
    pub fn clear(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TaskId {
        TaskId(i)
    }
    fn r(i: u64) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn raw_dependency() {
        let mut d = DepTracker::new();
        assert!(d.register(t(0), &[], &[r(1)]).is_empty());
        assert_eq!(d.register(t(1), &[r(1)], &[]), vec![t(0)]);
    }

    #[test]
    fn waw_dependency() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        assert_eq!(d.register(t(1), &[], &[r(1)]), vec![t(0)]);
    }

    #[test]
    fn war_dependency_blocks_overwrite() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        d.register(t(1), &[r(1)], &[]);
        d.register(t(2), &[r(1)], &[]);
        // Writer must wait for both readers (WAR) and the old writer (WAW).
        assert_eq!(d.register(t(3), &[], &[r(1)]), vec![t(0), t(1), t(2)]);
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        assert_eq!(d.register(t(1), &[r(1)], &[]), vec![t(0)]);
        assert_eq!(d.register(t(2), &[r(1)], &[]), vec![t(0)]);
    }

    #[test]
    fn write_resets_reader_set() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        d.register(t(1), &[r(1)], &[]);
        d.register(t(2), &[], &[r(1)]); // WAR on t1, WAW on t0
                                        // A later writer only sees t2, not the stale reader t1.
        assert_eq!(d.register(t(3), &[], &[r(1)]), vec![t(2)]);
    }

    #[test]
    fn inout_region_is_raw_plus_waw_without_self_edge() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        let preds = d.register(t(1), &[r(1)], &[r(1)]);
        assert_eq!(preds, vec![t(0)]);
        // And the next reader depends on the inout task.
        assert_eq!(d.register(t(2), &[r(1)], &[]), vec![t(1)]);
    }

    #[test]
    fn preds_are_deduplicated_across_regions() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1), r(2)]);
        let preds = d.register(t(1), &[r(1), r(2)], &[]);
        assert_eq!(preds, vec![t(0)]);
    }

    #[test]
    fn untouched_region_has_no_preds() {
        let mut d = DepTracker::new();
        assert!(d.register(t(0), &[r(9)], &[]).is_empty());
        assert_eq!(d.region_count(), 1);
    }

    #[test]
    fn clear_forgets_history() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        d.clear();
        assert!(d.register(t(1), &[r(1)], &[]).is_empty());
    }

    #[test]
    fn duplicate_ins_do_not_bloat_reader_lists() {
        let mut d = DepTracker::new();
        d.register(t(0), &[], &[r(1)]);
        // The same region listed three times in `ins` registers one
        // reader entry, so the next writer gets exactly one WAR edge.
        d.register(t(1), &[r(1), r(1), r(1)], &[]);
        assert_eq!(d.reader_entries(), 1);
        assert_eq!(d.register(t(2), &[], &[r(1)]), vec![t(0), t(1)]);
    }

    #[test]
    fn interleaved_duplicate_ins_are_deduplicated() {
        let mut d = DepTracker::new();
        d.register(t(0), &[r(1), r(2), r(1), r(2), r(1)], &[]);
        assert_eq!(d.reader_entries(), 2);
    }

    #[test]
    fn inout_keeps_single_reader_entry() {
        let mut d = DepTracker::new();
        // inout: the write clears the reader list, so nothing lingers.
        d.register(t(0), &[r(1), r(1)], &[r(1)]);
        assert_eq!(d.reader_entries(), 0);
    }

    #[test]
    fn reset_allows_task_ids_to_restart() {
        let mut d = DepTracker::new();
        d.register(t(5), &[], &[r(1)]);
        d.reset();
        // Restarting from 0 after reset is legal and sees no stale state.
        assert!(d.register(t(0), &[r(1)], &[]).is_empty());
        assert_eq!(d.region_count(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotonically")]
    fn non_monotonic_ids_are_rejected_in_debug() {
        let mut d = DepTracker::new();
        d.register(t(3), &[], &[r(1)]);
        d.register(t(3), &[], &[r(1)]); // same id again: stale-state bug
    }

    #[test]
    fn edges_always_point_forward() {
        // Randomised mini-check: later ids never appear as preds of earlier.
        let mut d = DepTracker::new();
        for i in 0..50 {
            let ins = [r((i % 7) as u64)];
            let outs = [r(((i + 3) % 7) as u64)];
            let preds = d.register(t(i), &ins, &outs);
            assert!(preds.iter().all(|p| p.index() < i));
        }
    }
}
