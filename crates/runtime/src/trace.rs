//! Chrome-trace export.
//!
//! Converts a task trace (live [`TaskRecord`]s or any source implementing
//! [`TraceEvent`]) into the Chrome Trace Event JSON format, viewable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). One lane per
//! worker/core, one complete event per task — the quickest way to *see*
//! barrier stalls, locality migrations and the pipeline structure of a
//! B-Par batch.

use crate::stats::TaskRecord;
use std::fmt::Write as _;

/// Anything that can be drawn as a trace slice.
pub trait TraceEvent {
    /// Slice name shown in the viewer.
    fn name(&self) -> &str;
    /// Lane (worker/core id).
    fn lane(&self) -> usize;
    /// Start time in seconds.
    fn start(&self) -> f64;
    /// End time in seconds.
    fn end(&self) -> f64;
}

impl TraceEvent for TaskRecord {
    fn name(&self) -> &str {
        self.label
    }
    fn lane(&self) -> usize {
        self.worker
    }
    fn start(&self) -> f64 {
        self.start
    }
    fn end(&self) -> f64 {
        self.end
    }
}

/// Renders events as a Chrome Trace Event JSON document.
///
/// Times are converted to microseconds (the format's native unit).
/// The output is self-contained: write it to a `.json` file and load it
/// in `chrome://tracing` or Perfetto.
pub fn chrome_trace<E: TraceEvent>(process_name: &str, events: &[E]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    // Process-name metadata record (always present, so the per-event
    // separator below is unconditional).
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    );
    for e in events {
        out.push(',');
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            escape(e.name()),
            e.lane(),
            e.start() * 1e6,
            (e.end() - e.start()).max(0.0) * 1e6,
        );
    }
    out.push_str("]}");
    out
}

/// Writes a Chrome trace of `events` to `path`.
pub fn write_chrome_trace<E: TraceEvent>(
    path: &std::path::Path,
    process_name: &str,
    events: &[E],
) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(process_name, events))
}

/// JSON string escaping. Besides `\` and `"`, every control character in
/// `U+0000`–`U+001F` must be escaped — a raw `\n` or `\t` in a task label
/// would make the whole trace file unparseable.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(label: &'static str, worker: usize, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            id: 0,
            label,
            tag: 0,
            worker,
            start,
            end,
            working_set_bytes: 0,
        }
    }

    #[test]
    fn trace_is_valid_json_shape() {
        let events = vec![rec("a", 0, 0.0, 0.001), rec("b", 1, 0.0005, 0.002)];
        let json = chrome_trace("test", &events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"tid\":1"));
        // Duration of task b: 1.5 ms = 1500 µs.
        assert!(json.contains("\"dur\":1500.000"));
    }

    #[test]
    fn names_are_escaped() {
        let events = vec![rec("we\"ird", 0, 0.0, 1.0)];
        let json = chrome_trace("p", &events);
        assert!(json.contains("we\\\"ird"));
    }

    #[test]
    fn control_characters_are_escaped() {
        // Regression: labels with control characters used to emit raw
        // bytes, producing invalid Chrome-trace JSON.
        let events = vec![rec("line\nbreak\ttab\r\u{0001}end", 0, 0.0, 1.0)];
        let json = chrome_trace("p\u{0002}", &events);
        assert!(json.contains("line\\nbreak\\ttab\\r\\u0001end"));
        assert!(json.contains("p\\u0002"));
        // No raw control characters survive anywhere in the document.
        assert!(json.chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn backslash_then_quote_escapes_once() {
        let events = vec![rec("a\\\"b", 0, 0.0, 1.0)];
        let json = chrome_trace("p", &events);
        assert!(json.contains("a\\\\\\\"b"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let events: Vec<TaskRecord> = vec![];
        let json = chrome_trace("empty", &events);
        assert!(json.contains("process_name"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn write_round_trips_through_fs() {
        let dir = std::env::temp_dir().join("bpar_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_chrome_trace(&path, "p", &[rec("x", 0, 0.0, 0.5)]).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("\"name\":\"x\""));
        std::fs::remove_file(&path).unwrap();
    }
}
