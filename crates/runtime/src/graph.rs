//! Static task-graph representation.
//!
//! The live [`crate::runtime::Runtime`] discovers the dependency graph
//! dynamically, but two other consumers need the graph as a value:
//!
//! * `bpar-sim` replays the exact same graph on a simulated multi-core
//!   machine under different scheduling policies and core counts,
//! * tests assert that the unrolled BRNN graphs have exactly the shape of
//!   the paper's Fig. 2.
//!
//! A [`TaskGraph`] is append-only and uses the same [`DepTracker`] edge
//! semantics as the runtime, so a graph built from identical `in`/`out`
//! clauses is guaranteed to match what the runtime would execute.

use crate::region::{DepTracker, RegionId};
use crate::task::TaskId;

/// Static description of one task: identification plus cost-model inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskNode {
    /// Task kind (e.g. `"lstm_fwd"`, `"merge"`, `"grad_update"`).
    pub label: &'static str,
    /// Client tag (cell index, layer, …).
    pub tag: u64,
    /// Floating-point operations the task performs (cost-model input).
    pub flops: u64,
    /// Bytes of unique data the task touches (cost-model + working set).
    pub working_set_bytes: usize,
}

impl TaskNode {
    /// Node with a label only; costs default to zero.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            tag: 0,
            flops: 0,
            working_set_bytes: 0,
        }
    }

    /// Sets the client tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the flop count.
    pub fn flops(mut self, flops: u64) -> Self {
        self.flops = flops;
        self
    }

    /// Sets the working-set size.
    pub fn working_set(mut self, bytes: usize) -> Self {
        self.working_set_bytes = bytes;
        self
    }
}

/// Append-only DAG of tasks with dependency edges.
#[derive(Debug, Default)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Declared `in` clauses per task, verbatim (duplicates included) so
    /// static analysis sees exactly what the builder wrote.
    ins: Vec<Vec<RegionId>>,
    /// Declared `out` clauses per task, verbatim.
    outs: Vec<Vec<RegionId>>,
    deps: DepTracker,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task with the given dependency clauses; returns its id.
    ///
    /// Edge semantics are identical to the live runtime (RAW/WAR/WAW via
    /// [`DepTracker`]).
    pub fn add_task(&mut self, node: TaskNode, ins: &[RegionId], outs: &[RegionId]) -> TaskId {
        let id = TaskId(self.nodes.len());
        let preds = self.deps.register(id, ins, outs);
        for &p in &preds {
            self.succs[p.index()].push(id.index());
        }
        self.preds.push(preds.iter().map(|p| p.index()).collect());
        self.succs.push(Vec::new());
        self.ins.push(ins.to_vec());
        self.outs.push(outs.to_vec());
        self.nodes.push(node);
        id
    }

    /// Adds a task with explicit predecessor ids (bypassing region clauses).
    ///
    /// Used by generators of random graphs in tests and by graph transforms.
    ///
    /// # Panics
    /// Panics if any predecessor id is not smaller than the new task's id
    /// (which would create a cycle).
    pub fn add_task_with_preds(&mut self, node: TaskNode, preds: &[usize]) -> TaskId {
        let id = self.nodes.len();
        for &p in preds {
            assert!(p < id, "predecessor {p} would not precede task {id}");
            self.succs[p].push(id);
        }
        let mut ps: Vec<usize> = preds.to_vec();
        ps.sort_unstable();
        ps.dedup();
        self.preds.push(ps);
        self.succs.push(Vec::new());
        self.ins.push(Vec::new());
        self.outs.push(Vec::new());
        self.nodes.push(node);
        TaskId(id)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node metadata for `id`.
    pub fn node(&self, id: usize) -> &TaskNode {
        &self.nodes[id]
    }

    /// Predecessor ids of `id`.
    pub fn preds(&self, id: usize) -> &[usize] {
        &self.preds[id]
    }

    /// Successor ids of `id`.
    pub fn succs(&self, id: usize) -> &[usize] {
        &self.succs[id]
    }

    /// Declared read regions of `id` (empty for tasks added via
    /// [`TaskGraph::add_task_with_preds`]).
    pub fn ins(&self, id: usize) -> &[RegionId] {
        &self.ins[id]
    }

    /// Declared write regions of `id` (empty for tasks added via
    /// [`TaskGraph::add_task_with_preds`]).
    pub fn outs(&self, id: usize) -> &[RegionId] {
        &self.outs[id]
    }

    /// All nodes, in id (topological) order.
    pub fn nodes(&self) -> &[TaskNode] {
        &self.nodes
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// Ids of tasks with no predecessors.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// Ids of tasks with no successors.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.succs[i].is_empty())
            .collect()
    }

    /// Sum of `cost(task)` over all tasks (the sequential execution time).
    pub fn total_work(&self, cost: impl Fn(&TaskNode) -> f64) -> f64 {
        self.nodes.iter().map(cost).sum()
    }

    /// Length of the critical (longest) path under the given cost model.
    ///
    /// This is the lower bound on makespan at infinite parallelism; the
    /// simulator asserts `critical_path <= makespan <= total_work` as a
    /// conservation law.
    pub fn critical_path(&self, cost: impl Fn(&TaskNode) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.len()];
        let mut best = 0.0f64;
        for i in 0..self.len() {
            let start = self.preds[i]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0f64, f64::max);
            finish[i] = start + cost(&self.nodes[i]);
            best = best.max(finish[i]);
        }
        best
    }

    /// Maximum width of the graph: the largest antichain found by level
    /// scheduling (tasks grouped by longest-path depth).
    ///
    /// This approximates the paper's notion of "parallelism exposed to the
    /// architecture".
    pub fn max_width(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut width = std::collections::HashMap::<usize, usize>::new();
        let mut best = 0;
        for i in 0..self.len() {
            let d = self.preds[i]
                .iter()
                .map(|&p| depth[p] + 1)
                .max()
                .unwrap_or(0);
            depth[i] = d;
            let w = width.entry(d).or_insert(0);
            *w += 1;
            best = best.max(*w);
        }
        best
    }

    /// Checks the structural invariants: every edge points forward and
    /// pred/succ lists mirror each other. Returns an error description on
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        for i in 0..self.len() {
            for &p in &self.preds[i] {
                if p >= i {
                    return Err(format!("edge {p} -> {i} does not point forward"));
                }
                if !self.succs[p].contains(&i) {
                    return Err(format!("succ list of {p} is missing {i}"));
                }
            }
            for &s in &self.succs[i] {
                if !self.preds[s].contains(&i) {
                    return Err(format!("pred list of {s} is missing {i}"));
                }
            }
        }
        Ok(())
    }

    /// Count of tasks whose label equals `label`.
    pub fn count_label(&self, label: &str) -> usize {
        self.nodes.iter().filter(|n| n.label == label).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RegionId {
        RegionId(i)
    }

    /// Diamond: a -> b, a -> c, b/c -> d.
    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_task(TaskNode::new("a").flops(1), &[], &[r(0)]);
        g.add_task(TaskNode::new("b").flops(2), &[r(0)], &[r(1)]);
        g.add_task(TaskNode::new("c").flops(3), &[r(0)], &[r(2)]);
        g.add_task(TaskNode::new("d").flops(4), &[r(1), r(2)], &[r(3)]);
        g
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert_eq!(g.preds(3), &[1, 2]);
        assert_eq!(g.succs(0), &[1, 2]);
        g.validate().unwrap();
    }

    #[test]
    fn critical_path_and_work() {
        let g = diamond();
        let cost = |n: &TaskNode| n.flops as f64;
        assert_eq!(g.total_work(cost), 10.0);
        // Longest path: a(1) -> c(3) -> d(4) = 8.
        assert_eq!(g.critical_path(cost), 8.0);
    }

    #[test]
    fn max_width_of_diamond_is_two() {
        assert_eq!(diamond().max_width(), 2);
    }

    #[test]
    fn chain_has_width_one() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            g.add_task(TaskNode::new("t"), &[r(i)], &[r(i + 1)]);
        }
        assert_eq!(g.max_width(), 1);
        assert_eq!(g.critical_path(|_| 1.0), 5.0);
    }

    #[test]
    fn independent_tasks_have_full_width() {
        let mut g = TaskGraph::new();
        for i in 0..7 {
            g.add_task(TaskNode::new("t"), &[], &[r(i)]);
        }
        assert_eq!(g.max_width(), 7);
        assert_eq!(g.critical_path(|_| 2.0), 2.0);
    }

    #[test]
    fn explicit_preds_validate() {
        let mut g = TaskGraph::new();
        g.add_task_with_preds(TaskNode::new("a"), &[]);
        g.add_task_with_preds(TaskNode::new("b"), &[0]);
        g.add_task_with_preds(TaskNode::new("c"), &[0, 1]);
        g.validate().unwrap();
        assert_eq!(g.preds(2), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "would not precede")]
    fn forward_edge_invariant_is_enforced() {
        let mut g = TaskGraph::new();
        g.add_task_with_preds(TaskNode::new("a"), &[0]); // self-edge
    }

    #[test]
    fn clauses_are_stored_verbatim() {
        let g = diamond();
        assert_eq!(g.ins(3), &[r(1), r(2)]);
        assert_eq!(g.outs(3), &[r(3)]);
        assert!(g.ins(0).is_empty());
        let mut g2 = TaskGraph::new();
        g2.add_task_with_preds(TaskNode::new("x"), &[]);
        assert!(g2.ins(0).is_empty() && g2.outs(0).is_empty());
    }

    #[test]
    fn count_label_counts() {
        let g = diamond();
        assert_eq!(g.count_label("a"), 1);
        assert_eq!(g.count_label("nope"), 0);
    }

    #[test]
    fn node_builder_sets_fields() {
        let n = TaskNode::new("x").tag(5).flops(100).working_set(64);
        assert_eq!(n.tag, 5);
        assert_eq!(n.flops, 100);
        assert_eq!(n.working_set_bytes, 64);
    }
}
