//! Cancel-on-first-win cells for hedged (redundant) dispatch.
//!
//! A router that hedges a straggling request enqueues a *second copy* on
//! another replica. Two copies of the same request may then race; exactly
//! one of them may be delivered to the client. [`CancelCell`] is the
//! shared coin both copies flip:
//!
//! * **Claim** — a copy that finishes successfully calls
//!   [`CancelCell::try_claim`]; the first caller wins and delivers, every
//!   later caller observes the loss and downgrades its result to a
//!   cancellation. The claim is a single compare-and-swap, so exactly one
//!   terminal outcome per request is a structural property, not a
//!   bookkeeping convention.
//! * **Outstanding copies** — the router tracks how many copies of the
//!   request are still in flight ([`CancelCell::add_copy`] /
//!   [`CancelCell::finish_copy`]). A copy that fails without claiming
//!   (panic, shed, reject) only produces a client-visible failure when it
//!   was the *last* copy and nobody claimed — otherwise its sibling is
//!   still running and may yet win.
//!
//! The runtime side ([`crate::runtime::Runtime::set_cancel_token`])
//! consults the installed cell before each task body during a replay: once
//! the cell is claimed the remaining bodies of the losing copy are skipped
//! (their fault draws still advance, keeping seeded injection
//! schedule-independent), which is what turns "cancel" from an accounting
//! fiction into reclaimed executor time.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

const PENDING: u8 = 0;
const CLAIMED: u8 = 1;

/// Shared claim/outstanding state for one hedged request.
///
/// Cheap (two atomics); allocate one per request behind an `Arc` and hand
/// clones to every dispatched copy.
#[derive(Debug)]
pub struct CancelCell {
    state: AtomicU8,
    /// Copies dispatched but not yet resolved. Starts at 1 (the primary).
    outstanding: AtomicU32,
}

impl Default for CancelCell {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelCell {
    /// A fresh cell: unclaimed, one outstanding copy (the primary).
    pub fn new() -> Self {
        Self {
            state: AtomicU8::new(PENDING),
            outstanding: AtomicU32::new(1),
        }
    }

    /// Attempts to claim the right to deliver the terminal outcome.
    /// Returns `true` exactly once across all copies.
    pub fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether some copy has already claimed the terminal outcome.
    pub fn is_claimed(&self) -> bool {
        self.state.load(Ordering::Acquire) == CLAIMED
    }

    /// Registers one more in-flight copy (called by the router before a
    /// hedge enqueue). Returns the new outstanding count.
    pub fn add_copy(&self) -> u32 {
        self.outstanding.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Marks one copy resolved (served, cancelled, failed, shed, or
    /// rejected). Returns the number of copies still outstanding; `0`
    /// means the caller held the last copy.
    pub fn finish_copy(&self) -> u32 {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "finish_copy() without a matching copy");
        prev - 1
    }

    /// Copies currently in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_succeeds_exactly_once() {
        let c = CancelCell::new();
        assert!(!c.is_claimed());
        assert!(c.try_claim());
        assert!(!c.try_claim());
        assert!(c.is_claimed());
    }

    #[test]
    fn claim_is_exclusive_across_threads() {
        for _ in 0..50 {
            let cell = Arc::new(CancelCell::new());
            let wins: Vec<bool> = (0..4)
                .map(|_| {
                    let c = cell.clone();
                    std::thread::spawn(move || c.try_claim())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
        }
    }

    #[test]
    fn outstanding_copy_accounting() {
        let c = CancelCell::new();
        assert_eq!(c.outstanding(), 1);
        assert_eq!(c.add_copy(), 2);
        assert_eq!(c.finish_copy(), 1);
        assert_eq!(c.finish_copy(), 0);
    }
}
