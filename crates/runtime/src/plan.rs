//! Reusable, pre-compiled task graphs ("execution plans").
//!
//! Submitting a task graph through [`crate::Runtime::submit`] pays the full
//! dependency-resolution cost — hashing every `in`/`out` region through the
//! [`DepTracker`] — on *every* batch, even when the graph's shape is
//! identical batch after batch. That is exactly the task-instantiation
//! overhead the paper's §IV-B requires to stay an order of magnitude below
//! task time, and the regime a serving loop lives in.
//!
//! A [`PlanBuilder`] accepts the same submission stream ([`PlanSpec`] is a
//! re-runnable sibling of [`crate::TaskSpec`] whose body is `Fn`, not
//! `FnOnce`) and [`PlanBuilder::compile`]s it once into a [`CompiledPlan`]:
//! per-task predecessor counts, successor lists, and the root set. Each
//! subsequent batch re-submits the whole graph through
//! [`crate::Runtime::replay`] in a single pass that never touches the
//! dependency tracker — the edges were frozen at compile time.
//!
//! Replay is semantically identical to re-submitting the same specs live:
//! tasks are registered in the same order, so the `DepTracker` would compute
//! the same RAW/WAW/WAR edges every time. (A live submission can elide an
//! edge whose predecessor already completed; that only ever *relaxes* an
//! ordering constraint the compiled plan still enforces, so replay admits a
//! subset of live interleavings and inherits its correctness.)

use crate::region::{DepTracker, RegionId};
use crate::task::TaskId;
use std::sync::Arc;

/// A task body that can be executed once per replay.
pub type PlanBody = Arc<dyn Fn() + Send + Sync + 'static>;

/// A re-runnable task submission: the dependency clauses of
/// [`crate::TaskSpec`] with an `Fn` body that survives arbitrarily many
/// replays. Construction uses the same builder style:
///
/// ```
/// # use bpar_runtime::plan::PlanSpec;
/// # use bpar_runtime::region::RegionId;
/// let spec = PlanSpec::new("lstm_fwd")
///     .tag(42)
///     .ins([RegionId(1)])
///     .outs([RegionId(2)])
///     .working_set(4 << 20)
///     .body(|| { /* one RNN cell, re-run every batch */ });
/// ```
pub struct PlanSpec {
    /// Human-readable task kind (e.g. `"cell_fwd"`, `"merge"`).
    pub label: &'static str,
    /// Free-form numeric tag for the client (cell index, layer, …).
    pub tag: u64,
    /// Regions read by the task (`in` clause).
    pub ins: Vec<RegionId>,
    /// Regions written by the task (`out` clause).
    pub outs: Vec<RegionId>,
    /// Approximate bytes the task touches (working-set accounting).
    pub working_set_bytes: usize,
    /// The re-runnable sequential body.
    pub body: Option<PlanBody>,
}

impl PlanSpec {
    /// New spec with the given label and no dependencies.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            tag: 0,
            ins: Vec::new(),
            outs: Vec::new(),
            working_set_bytes: 0,
            body: None,
        }
    }

    /// Attaches a client tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Adds input (read) dependencies.
    pub fn ins(mut self, regions: impl IntoIterator<Item = RegionId>) -> Self {
        self.ins.extend(regions);
        self
    }

    /// Adds output (write) dependencies.
    pub fn outs(mut self, regions: impl IntoIterator<Item = RegionId>) -> Self {
        self.outs.extend(regions);
        self
    }

    /// Records the task's approximate working-set size in bytes.
    pub fn working_set(mut self, bytes: usize) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Sets the re-runnable body.
    pub fn body(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.body = Some(Arc::new(f));
        self
    }
}

impl std::fmt::Debug for PlanSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanSpec")
            .field("label", &self.label)
            .field("tag", &self.tag)
            .field("ins", &self.ins)
            .field("outs", &self.outs)
            .field("working_set_bytes", &self.working_set_bytes)
            .field("has_body", &self.body.is_some())
            .finish()
    }
}

/// One task of a compiled plan.
pub(crate) struct PlanTask {
    pub label: &'static str,
    pub tag: u64,
    pub working_set_bytes: usize,
    /// Declared read regions, kept verbatim from the spec so analysis
    /// tooling (`bpar-verify`) can diff declarations against observed
    /// accesses after the edges were frozen.
    pub ins: Vec<RegionId>,
    /// Declared write regions (see `ins`).
    pub outs: Vec<RegionId>,
    pub body: PlanBody,
}

/// Collects [`PlanSpec`]s in submission order for one-shot compilation.
#[derive(Default)]
pub struct PlanBuilder {
    specs: Vec<PlanSpec>,
}

impl PlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a task; returns the id it will carry in every replay.
    ///
    /// # Panics
    /// Panics if the spec has no body.
    pub fn submit(&mut self, spec: PlanSpec) -> TaskId {
        assert!(spec.body.is_some(), "PlanSpec submitted without a body");
        let id = TaskId(self.specs.len());
        self.specs.push(spec);
        id
    }

    /// Number of tasks recorded so far.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no task has been recorded.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs the dependency tracker once over the recorded submission order
    /// and freezes the resulting graph.
    pub fn compile(self) -> CompiledPlan {
        let n = self.specs.len();
        let mut deps = DepTracker::new();
        let mut pending = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut tasks = Vec::with_capacity(n);
        for (i, spec) in self.specs.into_iter().enumerate() {
            for p in deps.register(TaskId(i), &spec.ins, &spec.outs) {
                succs[p.index()].push(i);
                pending[i] += 1;
            }
            tasks.push(PlanTask {
                label: spec.label,
                tag: spec.tag,
                working_set_bytes: spec.working_set_bytes,
                ins: spec.ins,
                outs: spec.outs,
                body: spec.body.expect("checked at submit"),
            });
        }
        let roots = (0..n).filter(|&i| pending[i] == 0).collect();
        CompiledPlan {
            tasks,
            pending,
            succs,
            roots,
        }
    }
}

/// A frozen task graph: bodies plus precomputed dependency structure,
/// replayable any number of times via [`crate::Runtime::replay`].
pub struct CompiledPlan {
    pub(crate) tasks: Vec<PlanTask>,
    /// Predecessor count per task (immutable template; the runtime copies
    /// it into live counters on each replay).
    pub(crate) pending: Vec<usize>,
    /// Successor lists per task.
    pub(crate) succs: Vec<Vec<usize>>,
    /// Tasks with no predecessors — ready the moment a replay starts.
    pub(crate) roots: Vec<usize>,
}

impl CompiledPlan {
    /// Number of tasks in the plan.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True for a plan with no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependency edges frozen into the plan.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Number of root (immediately ready) tasks.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Label of task `i`.
    pub fn label(&self, i: usize) -> &'static str {
        self.tasks[i].label
    }

    /// Client tag of task `i`.
    pub fn tag(&self, i: usize) -> u64 {
        self.tasks[i].tag
    }

    /// Declared read regions of task `i` (verbatim from its spec,
    /// duplicates included).
    pub fn ins(&self, i: usize) -> &[RegionId] {
        &self.tasks[i].ins
    }

    /// Declared write regions of task `i` (verbatim from its spec).
    pub fn outs(&self, i: usize) -> &[RegionId] {
        &self.tasks[i].outs
    }

    /// Successor task indices of task `i` (frozen dependency edges).
    pub fn succs_of(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Frozen predecessor count of task `i`.
    pub fn pending_of(&self, i: usize) -> usize {
        self.pending[i]
    }

    /// Root task indices (immediately ready on replay).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// **Test fixture.** Removes the dependency edge `from → to` from the
    /// frozen graph — successor list, predecessor count, and root set stay
    /// mutually consistent — while leaving both tasks' *declared clauses*
    /// untouched. This simulates a dependency-protocol bug (an edge the
    /// tracker dropped even though the clauses were faithfully declared),
    /// the bug class the happens-before prong of `bpar-verify` exists to
    /// catch and the observed-vs-declared clause diff is blind to.
    ///
    /// Returns `false` (plan unchanged) when the edge does not exist. Only
    /// the first copy of a duplicated edge is removed. Do not call this on
    /// plans used outside of verification tests.
    pub fn drop_edge(&mut self, from: usize, to: usize) -> bool {
        let Some(pos) = self
            .succs
            .get(from)
            .and_then(|s| s.iter().position(|&t| t == to))
        else {
            return false;
        };
        self.succs[from].remove(pos);
        self.pending[to] -= 1;
        if self.pending[to] == 0 {
            if let Err(i) = self.roots.binary_search(&to) {
                self.roots.insert(i, to);
            }
        }
        true
    }
}

impl std::fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("tasks", &self.len())
            .field("edges", &self.edge_count())
            .field("roots", &self.root_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn compile_computes_diamond_edges() {
        let mut b = PlanBuilder::new();
        b.submit(PlanSpec::new("a").outs([r(1)]).body(|| {}));
        b.submit(PlanSpec::new("b").ins([r(1)]).outs([r(2)]).body(|| {}));
        b.submit(PlanSpec::new("c").ins([r(1)]).outs([r(3)]).body(|| {}));
        b.submit(
            PlanSpec::new("d")
                .ins([r(2), r(3)])
                .outs([r(4)])
                .body(|| {}),
        );
        let plan = b.compile();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.roots, vec![0]);
        assert_eq!(plan.pending, vec![0, 1, 1, 2]);
        assert_eq!(plan.succs[0], vec![1, 2]);
        assert_eq!(plan.succs[1], vec![3]);
        assert_eq!(plan.succs[2], vec![3]);
        assert_eq!(plan.edge_count(), 4);
    }

    #[test]
    fn compile_keeps_edges_live_submission_would_elide() {
        // Live submission may skip an edge whose predecessor already ran;
        // compilation must keep every program-order edge.
        let mut b = PlanBuilder::new();
        b.submit(PlanSpec::new("w").outs([r(7)]).body(|| {}));
        b.submit(PlanSpec::new("r").ins([r(7)]).body(|| {}));
        let plan = b.compile();
        assert_eq!(plan.pending, vec![0, 1]);
        assert_eq!(plan.succs[0], vec![1]);
    }

    #[test]
    fn independent_tasks_are_all_roots() {
        let mut b = PlanBuilder::new();
        for i in 0..5 {
            b.submit(PlanSpec::new("t").outs([r(i)]).body(|| {}));
        }
        let plan = b.compile();
        assert_eq!(plan.root_count(), 5);
        assert_eq!(plan.edge_count(), 0);
    }

    #[test]
    fn empty_plan_compiles() {
        let plan = PlanBuilder::new().compile();
        assert!(plan.is_empty());
        assert_eq!(plan.root_count(), 0);
    }

    #[test]
    #[should_panic(expected = "without a body")]
    fn bodyless_spec_is_rejected() {
        PlanBuilder::new().submit(PlanSpec::new("nobody"));
    }

    #[test]
    fn drop_edge_keeps_structure_consistent() {
        let mut b = PlanBuilder::new();
        b.submit(PlanSpec::new("a").outs([r(1)]).body(|| {}));
        b.submit(PlanSpec::new("b").ins([r(1)]).outs([r(2)]).body(|| {}));
        let mut plan = b.compile();
        assert!(!plan.drop_edge(1, 0), "no such edge");
        assert!(plan.drop_edge(0, 1));
        assert!(!plan.drop_edge(0, 1), "already dropped");
        assert_eq!(plan.edge_count(), 0);
        assert_eq!(plan.pending_of(1), 0);
        // Task 1 became a root; the root list stays sorted.
        assert_eq!(plan.roots(), &[0, 1]);
        // Declared clauses are untouched — that is the whole point.
        assert_eq!(plan.ins(1), &[r(1)]);
    }

    #[test]
    fn compiled_plan_exposes_clauses_and_structure() {
        let mut b = PlanBuilder::new();
        b.submit(PlanSpec::new("w").tag(3).outs([r(1)]).body(|| {}));
        b.submit(PlanSpec::new("r").ins([r(1), r(1)]).body(|| {}));
        let plan = b.compile();
        assert_eq!(plan.label(0), "w");
        assert_eq!(plan.tag(0), 3);
        assert_eq!(plan.outs(0), &[r(1)]);
        // Clauses are verbatim: duplicates are preserved for the validator
        // (dedup happens in the DepTracker, not here).
        assert_eq!(plan.ins(1), &[r(1), r(1)]);
        assert_eq!(plan.succs_of(0), &[1]);
        assert_eq!(plan.pending_of(1), 1);
        assert_eq!(plan.roots(), &[0]);
    }

    #[test]
    fn builder_tracks_ids_and_len() {
        let mut b = PlanBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.submit(PlanSpec::new("a").body(|| {})), TaskId(0));
        assert_eq!(b.submit(PlanSpec::new("b").body(|| {})), TaskId(1));
        assert_eq!(b.len(), 2);
    }
}
