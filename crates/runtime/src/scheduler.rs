//! Ready-queue policies.
//!
//! The paper's B-Par configuration uses a *breadth-first task scheduler
//! with a single global ready queue* ordered FIFO, plus a *locality-aware
//! mechanism* that "schedules a task to run on the same core as a
//! predecessor if the task accesses a piece of data that was already read
//! or written by the predecessor" (§IV-A). [`ReadySet`] implements both
//! policies over one global FIFO queue:
//!
//! * [`SchedulerPolicy::Fifo`] — a worker always takes the oldest ready
//!   task (locality-oblivious baseline of Fig. 7);
//! * [`SchedulerPolicy::LocalityAware`] — a worker first scans a bounded
//!   window at the front of the queue for a task whose predecessor ran on
//!   it (its caches are warm with that task's inputs) and falls back to
//!   the queue front otherwise. Keeping the single global queue preserves
//!   breadth-first fairness — a strict per-core queue would let a worker
//!   hoard its own dependency chain and starve older ready work.
//!
//! The same type drives both the live runtime and the multi-core
//! simulator, so Fig. 7 compares identical policies.

use std::collections::VecDeque;
use std::sync::Arc;

/// A scripted pop order (see [`ReadySet::set_script`]).
#[derive(Debug)]
struct Script {
    order: Arc<[usize]>,
    cursor: usize,
}

/// Which ready-queue discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Global FIFO; a ready task runs on whichever worker asks first.
    Fifo,
    /// Global FIFO with an affinity scan: a task released by a
    /// predecessor that ran on worker `w` is preferentially taken by `w`.
    #[default]
    LocalityAware,
    /// Deterministic adversarial order for the schedule fuzzer
    /// (`bpar-verify`): deliberately *not* the submission-biased FIFO
    /// order, so an undeclared dependency whose effects happen to line up
    /// under FIFO is driven out of hiding. Any legal topological order
    /// must produce bit-identical results; a divergence under one of
    /// these orders is a concrete race witness.
    Adversarial(AdversarialOrder),
}

/// How [`SchedulerPolicy::Adversarial`] permutes the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialOrder {
    /// Newest ready task first (LIFO) — depth-first where FIFO is
    /// breadth-first, reversing sibling execution order.
    Reverse,
    /// Seeded xorshift pick among all ready tasks; the same seed always
    /// replays the same schedule on a single worker.
    ///
    /// The draw is mapped onto the queue with a widening multiply rather
    /// than `rng % len`, so every ready position is equiprobable. This
    /// fixed a modulo bias toward low queue positions — and changed the
    /// seed→schedule mapping: a given seed explores a *different* (still
    /// deterministic) schedule than it did before the fix, so recorded
    /// schedules or divergence witnesses keyed to old seeds do not
    /// transfer.
    Random(u64),
}

/// The set of ready-to-run tasks, organised according to a policy.
///
/// Task ids are opaque `usize`s so both the live runtime
/// ([`crate::Runtime`]) and the simulator can use this type.
#[derive(Debug)]
pub struct ReadySet {
    policy: SchedulerPolicy,
    /// Ready tasks with the worker whose caches hold their inputs.
    queue: VecDeque<(usize, Option<usize>)>,
    /// How deep into the queue the affinity scan may look.
    window: usize,
    /// xorshift64 state for [`AdversarialOrder::Random`].
    rng: u64,
    /// When set, overrides the policy: pops follow this exact task order.
    script: Option<Script>,
}

impl ReadySet {
    /// Ready set for `workers` workers under `policy`.
    pub fn new(policy: SchedulerPolicy, workers: usize) -> Self {
        let rng = match policy {
            // xorshift needs a nonzero state; remap only the zero seed so
            // distinct seeds never collapse onto the same schedule.
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(0)) => 0x9E37_79B9_7F4A_7C15,
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(seed)) => seed,
            _ => 1,
        };
        Self {
            policy,
            queue: VecDeque::new(),
            // Scanning ~2 tasks per worker keeps the affinity hit rate
            // high (each worker's resident chains release about that many
            // tasks) while bounding the cost of a pop.
            window: (2 * workers).max(8),
            rng,
            script: None,
        }
    }

    /// Installs (or clears, with `None`) a scripted pop order: while set,
    /// [`ReadySet::pop`] returns the scripted task ids in order, skipping
    /// the policy entirely. Used by the schedule-exploration prong of
    /// `bpar-verify` to replay one specific dependency-consistent
    /// topological order per run.
    ///
    /// A scripted task that is not yet ready falls back to the policy pop
    /// without advancing the script — that cannot happen when the script
    /// is a valid topological order driven by a single worker, where every
    /// prefix of the script has completed before the next pop.
    pub fn set_script(&mut self, order: Option<Arc<[usize]>>) {
        self.script = order.map(|order| Script { order, cursor: 0 });
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Enqueues a ready task. `preferred` is the worker that completed the
    /// predecessor which released this task; it is honoured only under
    /// [`SchedulerPolicy::LocalityAware`].
    pub fn push(&mut self, task: usize, preferred: Option<usize>) {
        let tag = match self.policy {
            SchedulerPolicy::Fifo | SchedulerPolicy::Adversarial(_) => None,
            SchedulerPolicy::LocalityAware => preferred,
        };
        self.queue.push_back((task, tag));
    }

    /// Dequeues a task for `worker`: the oldest task affine to it within
    /// the scan window, or the queue front. Returns `None` when no task
    /// is ready.
    pub fn pop(&mut self, worker: usize) -> Option<usize> {
        if let Some(script) = &mut self.script {
            if script.cursor < script.order.len() && !self.queue.is_empty() {
                let want = script.order[script.cursor];
                if let Some(pos) = self.queue.iter().position(|&(t, _)| t == want) {
                    script.cursor += 1;
                    return self.queue.remove(pos).map(|(t, _)| t);
                }
            }
        }
        match self.policy {
            SchedulerPolicy::LocalityAware => {
                let depth = self.window.min(self.queue.len());
                if let Some(pos) = self
                    .queue
                    .iter()
                    .take(depth)
                    .position(|&(_, tag)| tag == Some(worker))
                {
                    return self.queue.remove(pos).map(|(t, _)| t);
                }
            }
            SchedulerPolicy::Adversarial(AdversarialOrder::Reverse) => {
                return self.queue.pop_back().map(|(t, _)| t);
            }
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(_)) => {
                if self.queue.is_empty() {
                    return None;
                }
                // xorshift64 — deterministic for a given seed and pop
                // sequence, which single-worker fuzz runs guarantee.
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                // Widening multiply maps the draw onto 0..len without the
                // modulo bias that over-weights low positions whenever
                // `len` does not divide 2^64 (Lemire's bounded-range
                // reduction). Bias for small queues was negligible, but
                // the fuzzer's whole point is equiprobable schedules.
                let len = self.queue.len() as u64;
                let pos = ((self.rng as u128 * len as u128) >> 64) as usize;
                return self.queue.remove(pos).map(|(t, _)| t);
            }
            SchedulerPolicy::Fifo => {}
        }
        self.queue.pop_front().map(|(t, _)| t)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ignores_preference() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 2);
        rs.push(1, Some(1));
        rs.push(2, None);
        // Worker 1 gets them in FIFO order despite task 1's tag.
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn locality_prefers_affine_tasks() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        rs.push(10, None);
        rs.push(11, Some(1));
        // Worker 1 takes its affine task first even though 10 is older.
        assert_eq!(rs.pop(1), Some(11));
        assert_eq!(rs.pop(1), Some(10));
    }

    #[test]
    fn worker_without_affine_work_takes_front() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 3);
        rs.push(1, Some(0));
        rs.push(2, Some(0));
        // Worker 2 has no affine task: takes the oldest (no starvation).
        assert_eq!(rs.pop(2), Some(1));
        assert_eq!(rs.pop(0), Some(2));
        assert!(rs.is_empty());
    }

    #[test]
    fn affinity_scan_picks_oldest_affine() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        rs.push(1, Some(0));
        rs.push(2, Some(1));
        rs.push(3, Some(1));
        assert_eq!(rs.pop(1), Some(2)); // oldest task tagged 1
        assert_eq!(rs.pop(1), Some(3));
        assert_eq!(rs.pop(1), Some(1)); // falls back to front
    }

    #[test]
    fn scan_window_is_bounded() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 1);
        // Window is max(2*1, 8) = 8; an affine task at position 9 is not
        // seen, so the front is taken instead.
        for i in 0..9 {
            rs.push(i, None);
        }
        rs.push(99, Some(0));
        assert_eq!(rs.pop(0), Some(0));
    }

    #[test]
    fn untagged_pushes_behave_like_fifo() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 1);
        rs.push(5, Some(9)); // tag for a nonexistent worker
        rs.push(6, None);
        assert_eq!(rs.pop(0), Some(5));
        assert_eq!(rs.pop(0), Some(6));
    }

    #[test]
    fn reverse_order_is_lifo() {
        let mut rs = ReadySet::new(SchedulerPolicy::Adversarial(AdversarialOrder::Reverse), 1);
        for i in 0..4 {
            rs.push(i, Some(0)); // preference is ignored
        }
        assert_eq!(rs.pop(0), Some(3));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), Some(0));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rs = ReadySet::new(
                SchedulerPolicy::Adversarial(AdversarialOrder::Random(seed)),
                1,
            );
            for i in 0..10 {
                rs.push(i, None);
            }
            let mut order = Vec::new();
            while let Some(t) = rs.pop(0) {
                order.push(t);
            }
            order
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay the same schedule");
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "a permutation");
        // Different seeds explore different schedules (for these values).
        assert_ne!(a, run(43));
    }

    #[test]
    fn zero_seed_is_accepted() {
        let mut rs = ReadySet::new(SchedulerPolicy::Adversarial(AdversarialOrder::Random(0)), 1);
        rs.push(7, None);
        assert_eq!(rs.pop(0), Some(7));
    }

    #[test]
    fn script_overrides_policy_until_exhausted() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 1);
        for i in 0..4 {
            rs.push(i, None);
        }
        rs.set_script(Some(vec![2, 0, 3].into()));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(0));
        assert_eq!(rs.pop(0), Some(3));
        // Script exhausted: back to the FIFO policy for the remainder.
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn scripted_task_not_ready_falls_back_without_advancing() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 1);
        rs.push(0, None);
        rs.set_script(Some(vec![5, 0].into()));
        // Task 5 is not in the queue: policy pop, script stays on 5.
        assert_eq!(rs.pop(0), Some(0));
        rs.push(5, None);
        assert_eq!(rs.pop(0), Some(5));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        assert!(rs.is_empty());
        rs.push(1, None);
        rs.push(2, Some(0));
        assert_eq!(rs.len(), 2);
        rs.pop(0);
        assert_eq!(rs.len(), 1);
        rs.pop(1);
        assert!(rs.is_empty());
    }
}
