//! Ready-queue policies.
//!
//! The paper's B-Par configuration uses a *breadth-first task scheduler
//! with a single global ready queue* ordered FIFO, plus a *locality-aware
//! mechanism* that "schedules a task to run on the same core as a
//! predecessor if the task accesses a piece of data that was already read
//! or written by the predecessor" (§IV-A). [`ReadySet`] is a facade over
//! two queue organisations, so the live runtime, the simulator and the
//! schedule fuzzer are all policy-agnostic:
//!
//! * **Global queue** — one FIFO `VecDeque` shared by every worker:
//!   * [`SchedulerPolicy::Fifo`] — a worker always takes the oldest ready
//!     task (locality-oblivious baseline of Fig. 7);
//!   * [`SchedulerPolicy::LocalityAware`] — a worker first scans a bounded
//!     window at the front of the queue for a task whose predecessor ran
//!     on it (its caches are warm with that task's inputs) and falls back
//!     to the queue front otherwise. Keeping the single global queue
//!     preserves breadth-first fairness — a strict per-core queue would
//!     let a worker hoard its own dependency chain and starve older ready
//!     work;
//!   * [`SchedulerPolicy::Adversarial`] — fuzzing orders for
//!     `bpar-verify`.
//! * **Per-worker deques** — [`SchedulerPolicy::WorkStealing`], the
//!   post-paper design from "Advanced Synchronization Techniques for
//!   Task-based Runtime Systems" (ROADMAP item 4): a task released by
//!   worker `w` lands at the *bottom* of `w`'s deque; the owner pushes
//!   and pops LIFO at the bottom (hot chain stays in its cache), thieves
//!   steal FIFO from the *top* (the victim's oldest, coldest task).
//!   Victim selection is locality-aware: a thief retries the worker it
//!   last stole from (chains released by one producer stay paired with
//!   one consumer) before round-robining. Untagged tasks (roots, live
//!   submissions) go to a shared injector FIFO; every
//!   [`INJECTOR_POLL`]-th pop a worker drains the injector *first*, so an
//!   old untagged task cannot starve behind owners churning their own
//!   chains.
//!
//! Mid-queue removals (random adversarial draws, scripted extraction of
//! a task that can sit anywhere) use **swap-to-front removal** (`O(1)`:
//! swap the victim to the front, pop the front) instead of
//! `VecDeque::remove`, which shifts every element on the shorter side of
//! the removal point — `O(n²)` over a drain of a deep queue. The element
//! previously at the front takes the removed task's slot, so the
//! *relative* order of untouched tasks is perturbed — acceptable there
//! because fuzz schedules only promise per-seed determinism. The
//! paper-parity policies stay order-preserving and bit-identical:
//! pure-FIFO pops never remove mid-queue, and the affinity scan keeps
//! `VecDeque::remove`, which is already `O(window)` because the scan
//! window bounds the shorter side it shifts.
//!
//! The same type drives both the live runtime and the multi-core
//! simulator, so Fig. 7 compares identical policies.

use std::collections::VecDeque;
use std::sync::Arc;

/// How many pops a worker may serve from its own deque before it must
/// poll the shared injector first (work-stealing fairness bound; see the
/// starvation test).
pub const INJECTOR_POLL: u64 = 64;

/// A scripted pop order (see [`ReadySet::set_script`]).
#[derive(Debug)]
struct Script {
    order: Arc<[usize]>,
    cursor: usize,
    /// First worker that performed a scripted pop; `set_script`'s
    /// contract says every later scripted pop must come from the same
    /// worker (checked in debug builds).
    driver: Option<usize>,
}

/// Which ready-queue discipline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Global FIFO; a ready task runs on whichever worker asks first.
    Fifo,
    /// Global FIFO with an affinity scan: a task released by a
    /// predecessor that ran on worker `w` is preferentially taken by `w`.
    #[default]
    LocalityAware,
    /// Per-worker work-stealing deques with a shared injector: owners
    /// push/pop LIFO at the bottom, thieves steal FIFO from the top,
    /// victims are selected locality-first. Pairs with the runtime's
    /// immediate-successor execution (a completing task's first released
    /// successor runs on the same worker without touching any queue).
    WorkStealing,
    /// Deterministic adversarial order for the schedule fuzzer
    /// (`bpar-verify`): deliberately *not* the submission-biased FIFO
    /// order, so an undeclared dependency whose effects happen to line up
    /// under FIFO is driven out of hiding. Any legal topological order
    /// must produce bit-identical results; a divergence under one of
    /// these orders is a concrete race witness.
    Adversarial(AdversarialOrder),
}

impl SchedulerPolicy {
    /// Parses the CLI names of the three serving-facing policies
    /// (adversarial orders are verify-internal and not parseable).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "fifo" => Some(Self::Fifo),
            "locality" => Some(Self::LocalityAware),
            "work-stealing" | "stealing" => Some(Self::WorkStealing),
            _ => None,
        }
    }

    /// Stable CLI/report name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::LocalityAware => "locality",
            Self::WorkStealing => "work-stealing",
            Self::Adversarial(_) => "adversarial",
        }
    }
}

/// How [`SchedulerPolicy::Adversarial`] permutes the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialOrder {
    /// Newest ready task first (LIFO) — depth-first where FIFO is
    /// breadth-first, reversing sibling execution order.
    Reverse,
    /// Seeded xorshift pick among all ready tasks; the same seed always
    /// replays the same schedule on a single worker.
    ///
    /// The draw is mapped onto the queue with a widening multiply rather
    /// than `rng % len`, so every ready position is equiprobable. Two
    /// changes have altered the seed→schedule mapping over time (each
    /// still deterministic per seed): the modulo-bias fix, and the switch
    /// to swap-to-front removal, which perturbs the relative order of the
    /// tasks left behind by a mid-queue pick. Recorded schedules or
    /// divergence witnesses keyed to old seeds do not transfer.
    Random(u64),
}

/// Per-worker deques plus a shared injector (the
/// [`SchedulerPolicy::WorkStealing`] organisation).
#[derive(Debug)]
struct DequeSet {
    /// One deque per worker. The owner treats the *back* as the bottom
    /// (LIFO push/pop); thieves steal from the *front* (the top).
    local: Vec<VecDeque<usize>>,
    /// Tasks with no release affinity: roots and untagged submissions.
    injector: VecDeque<usize>,
    /// Last victim each worker successfully stole from — tried first on
    /// the next steal, so a producer/consumer pair stays paired.
    last_victim: Vec<usize>,
    /// Per-worker pop counter driving the periodic injector poll.
    pops: Vec<u64>,
    /// Total ready tasks across the injector and every deque.
    len: usize,
}

impl DequeSet {
    fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            local: (0..workers).map(|_| VecDeque::new()).collect(),
            injector: VecDeque::new(),
            last_victim: vec![0; workers],
            pops: vec![0; workers],
            len: 0,
        }
    }

    fn push(&mut self, task: usize, preferred: Option<usize>) {
        match preferred {
            Some(w) if w < self.local.len() => self.local[w].push_back(task),
            _ => self.injector.push_back(task),
        }
        self.len += 1;
    }

    fn pop(&mut self, worker: usize) -> Option<usize> {
        // Fairness: a periodic forced injector poll bounds how long an
        // untagged task can wait behind owners churning their own chains.
        if let Some(count) = self.pops.get_mut(worker) {
            *count += 1;
            if *count % INJECTOR_POLL == 0 {
                if let Some(t) = self.injector.pop_front() {
                    self.len -= 1;
                    return Some(t);
                }
            }
        }
        // 1. Own deque, bottom first: the task this worker released last,
        //    whose inputs are hottest in its cache.
        if let Some(q) = self.local.get_mut(worker) {
            if let Some(t) = q.pop_back() {
                self.len -= 1;
                return Some(t);
            }
        }
        // 2. Shared injector (oldest untagged work).
        if let Some(t) = self.injector.pop_front() {
            self.len -= 1;
            return Some(t);
        }
        // 3. Steal from the top of a victim's deque — its oldest, coldest
        //    task, leaving the victim's hot bottom alone. Locality-aware
        //    victim order: last successful victim first, then round-robin.
        let n = self.local.len();
        let start = self.last_victim.get(worker).copied().unwrap_or(0) % n.max(1);
        for i in 0..n {
            let v = (start + i) % n;
            if v == worker {
                continue;
            }
            if let Some(t) = self.local[v].pop_front() {
                if let Some(lv) = self.last_victim.get_mut(worker) {
                    *lv = v;
                }
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }

    /// Removes a specific task wherever it sits (scripted pops only).
    fn remove_task(&mut self, want: usize) -> Option<usize> {
        if let Some(pos) = self.injector.iter().position(|&t| t == want) {
            self.injector.swap(0, pos);
            self.len -= 1;
            return self.injector.pop_front();
        }
        for q in &mut self.local {
            if let Some(pos) = q.iter().position(|&t| t == want) {
                q.swap(0, pos);
                self.len -= 1;
                return q.pop_front();
            }
        }
        None
    }
}

/// The two queue organisations behind the facade.
#[derive(Debug)]
enum Queues {
    /// One global FIFO shared by every worker; tasks keep their
    /// released-by tag so the policy is applied at *pop* time.
    Global(VecDeque<(usize, Option<usize>)>),
    /// Per-worker work-stealing deques.
    Deques(DequeSet),
}

/// Swap-to-front removal: `O(1)` where `VecDeque::remove` shifts the
/// shorter side of the removal point. The former front element takes the
/// removed slot, perturbing the relative order of what remains — so this
/// is reserved for the paths where `pos` can sit mid-queue (random
/// adversarial draws, scripted mid-queue extraction). Paper-parity paths
/// keep order-preserving removal: FIFO pops only at the ends, and the
/// locality scan uses `VecDeque::remove`, which is already `O(window)`
/// there because `pos ≤ window` bounds the shorter side it shifts —
/// keeping committed LocalityAware figure runs bit-identical.
fn take_at<T>(q: &mut VecDeque<T>, pos: usize) -> Option<T> {
    q.swap(0, pos);
    q.pop_front()
}

/// The set of ready-to-run tasks, organised according to a policy.
///
/// Task ids are opaque `usize`s so both the live runtime
/// ([`crate::Runtime`]) and the simulator can use this type.
#[derive(Debug)]
pub struct ReadySet {
    policy: SchedulerPolicy,
    queues: Queues,
    /// How deep into the global queue the affinity scan may look.
    window: usize,
    /// xorshift64 state for [`AdversarialOrder::Random`].
    rng: u64,
    /// When set, overrides the policy: pops follow this exact task order.
    script: Option<Script>,
}

impl ReadySet {
    /// Ready set for `workers` workers under `policy`.
    pub fn new(policy: SchedulerPolicy, workers: usize) -> Self {
        let rng = match policy {
            // xorshift needs a nonzero state; remap only the zero seed so
            // distinct seeds never collapse onto the same schedule.
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(0)) => 0x9E37_79B9_7F4A_7C15,
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(seed)) => seed,
            _ => 1,
        };
        let queues = match policy {
            SchedulerPolicy::WorkStealing => Queues::Deques(DequeSet::new(workers)),
            _ => Queues::Global(VecDeque::new()),
        };
        Self {
            policy,
            queues,
            // Scanning ~2 tasks per worker keeps the affinity hit rate
            // high (each worker's resident chains release about that many
            // tasks) while bounding the cost of a pop.
            window: (2 * workers).max(8),
            rng,
            script: None,
        }
    }

    /// Installs (or clears, with `None`) a scripted pop order: while set,
    /// [`ReadySet::pop`] returns the scripted task ids in order, skipping
    /// the policy entirely. Used by the schedule-exploration prong of
    /// `bpar-verify` to replay one specific dependency-consistent
    /// topological order per run.
    ///
    /// A scripted task that is not yet ready falls back to the policy pop
    /// without advancing the script — that cannot happen when the script
    /// is a valid topological order driven by a single worker, where every
    /// prefix of the script has completed before the next pop. Debug
    /// builds assert the single-worker part of that contract.
    pub fn set_script(&mut self, order: Option<Arc<[usize]>>) {
        self.script = order.map(|order| Script {
            order,
            cursor: 0,
            driver: None,
        });
    }

    /// True while a scripted pop order is installed. The runtime's wakeup
    /// accounting must not assume a completing worker takes one of the
    /// tasks it just released when a script may withhold it.
    pub fn script_active(&self) -> bool {
        self.script.is_some()
    }

    /// True when the runtime may hand a completing task's first released
    /// successor directly to the same worker without queueing it
    /// (immediate-successor execution). Only the work-stealing policy opts
    /// in: the global-queue policies define their schedules *through* the
    /// queue (FIFO parity, fuzzing orders), and a script must see every
    /// ready task to stay faithful.
    pub fn direct_handoff(&self) -> bool {
        matches!(self.policy, SchedulerPolicy::WorkStealing) && self.script.is_none()
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Enqueues a ready task. `preferred` is the worker that completed the
    /// predecessor which released this task. The tag is stored under every
    /// policy and honoured at pop time — [`SchedulerPolicy::LocalityAware`]
    /// scans for it, [`SchedulerPolicy::WorkStealing`] homes the task on
    /// that worker's deque, the rest ignore it.
    pub fn push(&mut self, task: usize, preferred: Option<usize>) {
        match &mut self.queues {
            Queues::Global(q) => q.push_back((task, preferred)),
            Queues::Deques(d) => d.push(task, preferred),
        }
    }

    /// Dequeues a task for `worker` according to the policy (see the
    /// module docs). Returns `None` when no task is ready.
    pub fn pop(&mut self, worker: usize) -> Option<usize> {
        let nonempty = !self.is_empty();
        if let Some(script) = &mut self.script {
            if script.cursor < script.order.len() && nonempty {
                let want = script.order[script.cursor];
                let found = match &mut self.queues {
                    Queues::Global(q) => q
                        .iter()
                        .position(|&(t, _)| t == want)
                        .and_then(|pos| take_at(q, pos).map(|(t, _)| t)),
                    Queues::Deques(d) => d.remove_task(want),
                };
                if let Some(t) = found {
                    match script.driver {
                        None => script.driver = Some(worker),
                        Some(d) => debug_assert_eq!(
                            d, worker,
                            "set_script contract violated: scripted pops must be \
                             driven by a single worker (worker {worker} popped \
                             after worker {d})"
                        ),
                    }
                    script.cursor += 1;
                    return Some(t);
                }
            }
        }
        let q = match &mut self.queues {
            Queues::Deques(d) => return d.pop(worker),
            Queues::Global(q) => q,
        };
        match self.policy {
            SchedulerPolicy::LocalityAware => {
                let depth = self.window.min(q.len());
                if let Some(pos) = q
                    .iter()
                    .take(depth)
                    .position(|&(_, tag)| tag == Some(worker))
                {
                    // Order-preserving on purpose: `pos ≤ window`, so
                    // `remove` shifts at most `window` elements, and the
                    // untouched relative order keeps LocalityAware runs
                    // bit-identical to the pre-deque scheduler.
                    return q.remove(pos).map(|(t, _)| t);
                }
            }
            SchedulerPolicy::Adversarial(AdversarialOrder::Reverse) => {
                return q.pop_back().map(|(t, _)| t);
            }
            SchedulerPolicy::Adversarial(AdversarialOrder::Random(_)) => {
                if q.is_empty() {
                    return None;
                }
                // xorshift64 — deterministic for a given seed and pop
                // sequence, which single-worker fuzz runs guarantee.
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                // Widening multiply maps the draw onto 0..len without the
                // modulo bias that over-weights low positions whenever
                // `len` does not divide 2^64 (Lemire's bounded-range
                // reduction). Bias for small queues was negligible, but
                // the fuzzer's whole point is equiprobable schedules.
                let len = q.len() as u64;
                let pos = ((self.rng as u128 * len as u128) >> 64) as usize;
                return take_at(q, pos).map(|(t, _)| t);
            }
            SchedulerPolicy::Fifo => {}
            SchedulerPolicy::WorkStealing => unreachable!("work-stealing uses Queues::Deques"),
        }
        q.pop_front().map(|(t, _)| t)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        match &self.queues {
            Queues::Global(q) => q.len(),
            Queues::Deques(d) => d.len,
        }
    }

    /// True when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ignores_preference() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 2);
        rs.push(1, Some(1));
        rs.push(2, None);
        // Worker 1 gets them in FIFO order despite task 1's tag.
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn fifo_keeps_tags_so_policy_is_applied_at_pop_time() {
        // The tag must survive the push even under FIFO — dropping it at
        // push time silently erased the release-affinity information the
        // pop-side policy (and any tooling inspecting the queue) relies
        // on. FIFO order itself is unaffected.
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 4);
        for i in 0..8 {
            rs.push(i, Some(i % 4));
        }
        for i in 0..8 {
            assert_eq!(rs.pop(3), Some(i));
        }
    }

    #[test]
    fn locality_prefers_affine_tasks() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        rs.push(10, None);
        rs.push(11, Some(1));
        // Worker 1 takes its affine task first even though 10 is older.
        assert_eq!(rs.pop(1), Some(11));
        assert_eq!(rs.pop(1), Some(10));
    }

    #[test]
    fn worker_without_affine_work_takes_front() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 3);
        rs.push(1, Some(0));
        rs.push(2, Some(0));
        // Worker 2 has no affine task: takes the oldest (no starvation).
        assert_eq!(rs.pop(2), Some(1));
        assert_eq!(rs.pop(0), Some(2));
        assert!(rs.is_empty());
    }

    #[test]
    fn affinity_scan_picks_oldest_affine() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        rs.push(1, Some(0));
        rs.push(2, Some(1));
        rs.push(3, Some(1));
        assert_eq!(rs.pop(1), Some(2)); // oldest task tagged 1
        assert_eq!(rs.pop(1), Some(3));
        assert_eq!(rs.pop(1), Some(1)); // falls back to front
    }

    #[test]
    fn scan_window_is_bounded() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 1);
        // Window is max(2*1, 8) = 8; an affine task at position 9 is not
        // seen, so the front is taken instead.
        for i in 0..9 {
            rs.push(i, None);
        }
        rs.push(99, Some(0));
        assert_eq!(rs.pop(0), Some(0));
    }

    #[test]
    fn untagged_pushes_behave_like_fifo() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 1);
        rs.push(5, Some(9)); // tag for a nonexistent worker
        rs.push(6, None);
        assert_eq!(rs.pop(0), Some(5));
        assert_eq!(rs.pop(0), Some(6));
    }

    #[test]
    fn reverse_order_is_lifo() {
        let mut rs = ReadySet::new(SchedulerPolicy::Adversarial(AdversarialOrder::Reverse), 1);
        for i in 0..4 {
            rs.push(i, Some(0)); // preference is ignored
        }
        assert_eq!(rs.pop(0), Some(3));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), Some(0));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rs = ReadySet::new(
                SchedulerPolicy::Adversarial(AdversarialOrder::Random(seed)),
                1,
            );
            for i in 0..10 {
                rs.push(i, None);
            }
            let mut order = Vec::new();
            while let Some(t) = rs.pop(0) {
                order.push(t);
            }
            order
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must replay the same schedule");
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>(), "a permutation");
        // Different seeds explore different schedules (for these values).
        assert_ne!(a, run(43));
    }

    #[test]
    fn zero_seed_is_accepted() {
        let mut rs = ReadySet::new(SchedulerPolicy::Adversarial(AdversarialOrder::Random(0)), 1);
        rs.push(7, None);
        assert_eq!(rs.pop(0), Some(7));
    }

    #[test]
    fn script_overrides_policy_until_exhausted() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 1);
        for i in 0..4 {
            rs.push(i, None);
        }
        rs.set_script(Some(vec![2, 0, 3].into()));
        assert!(rs.script_active());
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(0));
        assert_eq!(rs.pop(0), Some(3));
        // Script exhausted: back to the FIFO policy for the remainder.
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), None);
        rs.set_script(None);
        assert!(!rs.script_active());
    }

    #[test]
    fn scripted_task_not_ready_falls_back_without_advancing() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 1);
        rs.push(0, None);
        rs.set_script(Some(vec![5, 0].into()));
        // Task 5 is not in the queue: policy pop, script stays on 5.
        assert_eq!(rs.pop(0), Some(0));
        rs.push(5, None);
        assert_eq!(rs.pop(0), Some(5));
    }

    #[test]
    fn script_drives_work_stealing_deques_too() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        rs.push(0, None); // injector
        rs.push(1, Some(0));
        rs.push(2, Some(1)); // another worker's deque
        rs.set_script(Some(vec![2, 0, 1].into()));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(0));
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    #[should_panic(expected = "single worker")]
    #[cfg(debug_assertions)]
    fn scripted_pops_from_two_workers_assert() {
        let mut rs = ReadySet::new(SchedulerPolicy::Fifo, 2);
        rs.push(0, None);
        rs.push(1, None);
        rs.set_script(Some(vec![0, 1].into()));
        assert_eq!(rs.pop(0), Some(0));
        let _ = rs.pop(1); // second scripted pop from another worker
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut rs = ReadySet::new(SchedulerPolicy::LocalityAware, 2);
        assert!(rs.is_empty());
        rs.push(1, None);
        rs.push(2, Some(0));
        assert_eq!(rs.len(), 2);
        rs.pop(0);
        assert_eq!(rs.len(), 1);
        rs.pop(1);
        assert!(rs.is_empty());
    }

    #[test]
    fn owner_pops_lifo_from_its_own_deque() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        rs.push(1, Some(0));
        rs.push(2, Some(0));
        rs.push(3, Some(0));
        // Owner takes its newest (bottom) task first: depth-first over the
        // chain it is releasing.
        assert_eq!(rs.pop(0), Some(3));
        assert_eq!(rs.pop(0), Some(2));
        assert_eq!(rs.pop(0), Some(1));
        assert_eq!(rs.pop(0), None);
    }

    #[test]
    fn thief_steals_oldest_from_victim_top() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        rs.push(1, Some(0));
        rs.push(2, Some(0));
        // Worker 1 owns nothing: steals worker 0's *oldest* task, leaving
        // the hot bottom (task 2) for the owner.
        assert_eq!(rs.pop(1), Some(1));
        assert_eq!(rs.pop(0), Some(2));
        assert!(rs.is_empty());
    }

    #[test]
    fn untagged_tasks_go_to_injector_fifo() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        rs.push(10, None);
        rs.push(11, None);
        rs.push(12, Some(0));
        // Own deque first, then injector in FIFO order.
        assert_eq!(rs.pop(0), Some(12));
        assert_eq!(rs.pop(0), Some(10));
        assert_eq!(rs.pop(1), Some(11));
    }

    #[test]
    fn out_of_range_tag_goes_to_injector() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        rs.push(7, Some(9)); // no worker 9: injector, not a lost task
        assert_eq!(rs.pop(0), Some(7));
    }

    #[test]
    fn steal_retries_last_successful_victim_first() {
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 4);
        rs.push(1, Some(2));
        rs.push(2, Some(2));
        rs.push(3, Some(1));
        // Worker 3's initial victim scan starts at 0 and finds worker 1's
        // task first.
        assert_eq!(rs.pop(3), Some(3));
        // Worker 1 is now empty; the next steal comes from worker 2 and
        // records it as worker 3's preferred victim.
        assert_eq!(rs.pop(3), Some(1));
        assert_eq!(rs.pop(2), Some(2)); // owner drains its own deque
        rs.push(4, Some(1));
        rs.push(5, Some(2));
        // Preferred victim 2 is tried before the round-robin reaches
        // worker 1, even though worker 1's task is available.
        assert_eq!(rs.pop(3), Some(5));
    }

    #[test]
    fn injector_poll_bounds_untagged_starvation() {
        // An old untagged task must be taken within INJECTOR_POLL pops
        // even while the owner keeps releasing (and LIFO-popping) its own
        // chain — the starvation bound of the work-stealing design.
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, 1);
        rs.push(9999, None);
        let mut took_old = None;
        for i in 0..(2 * INJECTOR_POLL as usize) {
            rs.push(i, Some(0));
            let got = rs.pop(0).expect("work is always ready");
            if got == 9999 {
                took_old = Some(i);
                break;
            }
        }
        let at = took_old.expect("untagged task starved");
        assert!(
            at < INJECTOR_POLL as usize,
            "injector polled too late: pop {at}"
        );
        // Drain: nothing is lost.
        let mut rest = Vec::new();
        while let Some(t) = rs.pop(0) {
            rest.push(t);
        }
        assert!(rest.iter().all(|&t| t < 2 * INJECTOR_POLL as usize));
    }

    #[test]
    fn work_stealing_loses_no_tasks_across_workers() {
        let workers = 4;
        let mut rs = ReadySet::new(SchedulerPolicy::WorkStealing, workers);
        let mut seen = Vec::new();
        // Interleave pushes from every "releasing worker" with pops from
        // every worker id, exactly-once overall.
        for round in 0..50usize {
            for w in 0..workers {
                rs.push(round * 10 + w, if w % 3 == 0 { None } else { Some(w) });
            }
            if round % 2 == 0 {
                for w in 0..workers {
                    if let Some(t) = rs.pop((w + round) % workers) {
                        seen.push(t);
                    }
                }
            }
        }
        while let Some(t) = rs.pop(1) {
            seen.push(t);
        }
        assert_eq!(seen.len(), 50 * workers);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50 * workers, "a task was popped twice");
        assert!(rs.is_empty());
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn direct_handoff_only_for_work_stealing_without_script() {
        let ws = ReadySet::new(SchedulerPolicy::WorkStealing, 2);
        assert!(ws.direct_handoff());
        let mut ws = ws;
        ws.set_script(Some(vec![0].into()));
        assert!(!ws.direct_handoff(), "a script must see every ready task");
        ws.set_script(None);
        assert!(ws.direct_handoff());
        for policy in [
            SchedulerPolicy::Fifo,
            SchedulerPolicy::LocalityAware,
            SchedulerPolicy::Adversarial(AdversarialOrder::Reverse),
        ] {
            assert!(!ReadySet::new(policy, 2).direct_handoff(), "{policy:?}");
        }
    }

    #[test]
    fn policy_parse_and_names_roundtrip() {
        for (name, policy) in [
            ("fifo", SchedulerPolicy::Fifo),
            ("locality", SchedulerPolicy::LocalityAware),
            ("work-stealing", SchedulerPolicy::WorkStealing),
        ] {
            assert_eq!(SchedulerPolicy::parse(name), Some(policy));
            assert_eq!(policy.as_str(), name);
        }
        assert_eq!(
            SchedulerPolicy::parse("stealing"),
            Some(SchedulerPolicy::WorkStealing)
        );
        assert_eq!(SchedulerPolicy::parse("nope"), None);
    }
}
