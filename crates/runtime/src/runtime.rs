//! The live task runtime: worker pool, dynamic dependency resolution,
//! `taskwait`.
//!
//! This plays the role OmpSs/Nanos++ plays in the paper: tasks are submitted
//! with `in`/`out` clauses in program order, the dependency graph is built
//! on the fly, and ready tasks are dispatched to worker threads immediately
//! — execution overlaps submission and **no barrier** ever separates network
//! layers. The only synchronisation point is [`Runtime::taskwait`], the
//! equivalent of `#pragma omp taskwait` at the end of a training batch.

use crate::cancel::CancelCell;
use crate::fault::{self, FaultPlan};
use crate::lockwitness::WitnessedMutex;
use crate::plan::CompiledPlan;
use crate::region::{DepTracker, RegionId};
use crate::scheduler::{ReadySet, SchedulerPolicy};
use crate::stats::{RuntimeStats, TaskRecord};
use crate::task::{TaskId, TaskSpec};
use crate::validate::{self, AccessRecorder, TaskScope};
use parking_lot::Condvar;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads. `0` means "use available parallelism".
    pub workers: usize,
    /// Ready-queue policy (see [`SchedulerPolicy`]).
    pub policy: SchedulerPolicy,
    /// Whether to keep a per-task [`TaskRecord`] trace (cheap; on by
    /// default because the granularity experiments need it).
    pub record_trace: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            policy: SchedulerPolicy::default(),
            record_trace: true,
        }
    }
}

/// A task body: either a one-shot closure (live submission) or a shared
/// plan body that can be re-run every replay without re-boxing.
enum TaskBody {
    /// Live-submitted closure, consumed on execution.
    Once(Box<dyn FnOnce() + Send + 'static>),
    /// Body owned by a [`CompiledPlan`]; cloning is a refcount bump, so a
    /// replay materialises its tasks without touching the allocator.
    Shared(crate::plan::PlanBody),
}

impl TaskBody {
    fn run(self) {
        match self {
            TaskBody::Once(f) => f(),
            TaskBody::Shared(f) => f(),
        }
    }
}

/// Per-task bookkeeping held by the runtime.
struct TaskMeta {
    label: &'static str,
    tag: u64,
    working_set_bytes: usize,
    /// Unsatisfied predecessor count; ready when it reaches zero.
    pending: usize,
    /// Tasks to release on completion (live tasks only — replayed tasks
    /// read their frozen successor lists straight from the plan).
    succs: Vec<usize>,
    completed: bool,
    body: Option<TaskBody>,
}

/// State behind the central lock.
struct Inner {
    deps: DepTracker,
    tasks: Vec<TaskMeta>,
    ready: ReadySet,
    /// Submitted-but-not-completed task count.
    incomplete: usize,
    records: Vec<TaskRecord>,
    overhead: Duration,
    /// First panic payload observed in a task body.
    panicked: Option<String>,
    shutdown: bool,
    record_trace: bool,
    /// When set, workers wrap every task body in a [`TaskScope`] so slot
    /// accesses are attributed to the executing task (validation mode).
    validation: Option<Arc<AccessRecorder>>,
    /// When set, workers consult the plan before each task body and may
    /// panic or straggle on its behalf (fault-injection mode).
    fault: Option<Arc<FaultPlan>>,
    /// When set, workers check the cell before each task body and skip
    /// the body once the cell is claimed (hedged-dispatch cancellation).
    cancel: Option<Arc<CancelCell>>,
    /// The plan currently loaded by [`Runtime::replay`]. Tasks with an
    /// index inside this plan take their successor lists from it instead
    /// of from per-task `succs` vectors, which is what keeps a warm
    /// replay free of heap allocations.
    replayed: Option<Arc<CompiledPlan>>,
}

struct Shared {
    /// The central runtime lock, witnessed (see [`crate::lockwitness`]) so
    /// the verify tooling can audit the lock discipline the work-stealing
    /// refactor will later replace.
    inner: WitnessedMutex<Inner>,
    /// Signals workers that the ready set or shutdown flag changed.
    work_cv: Condvar,
    /// Signals `taskwait` that `incomplete` may have reached zero.
    done_cv: Condvar,
    epoch: Instant,
}

/// Task-based runtime with OmpSs-style dependency tracking.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
}

impl Runtime {
    /// Starts a runtime with `config.workers` worker threads.
    pub fn new(config: RuntimeConfig) -> Self {
        let n_workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            inner: WitnessedMutex::new(
                "runtime.inner",
                Inner {
                    deps: DepTracker::new(),
                    tasks: Vec::new(),
                    ready: ReadySet::new(config.policy, n_workers),
                    incomplete: 0,
                    records: Vec::new(),
                    overhead: Duration::ZERO,
                    panicked: None,
                    shutdown: false,
                    record_trace: config.record_trace,
                    validation: None,
                    fault: None,
                    cancel: None,
                    replayed: None,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            epoch: Instant::now(),
        });
        let workers = (0..n_workers)
            .map(|w| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("bpar-worker-{w}"))
                    .spawn(move || worker_loop(sh, w))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers,
            n_workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Submits a task; it may start executing immediately if its
    /// dependencies are already satisfied.
    ///
    /// # Panics
    /// Panics if the spec has no body.
    pub fn submit(&self, spec: TaskSpec) -> TaskId {
        let TaskSpec {
            label,
            tag,
            ins,
            outs,
            working_set_bytes,
            body,
        } = spec;
        let body = body.expect("TaskSpec submitted without a body");

        let t0 = Instant::now();
        let mut inner = self.shared.inner.lock();
        let id = TaskId(inner.tasks.len());
        let preds = inner.deps.register(id, &ins, &outs);
        let mut pending = 0;
        for p in preds {
            let pm = &mut inner.tasks[p.index()];
            if !pm.completed {
                pm.succs.push(id.index());
                pending += 1;
            }
        }
        inner.tasks.push(TaskMeta {
            label,
            tag,
            working_set_bytes,
            pending,
            succs: Vec::new(),
            completed: false,
            body: Some(TaskBody::Once(body)),
        });
        inner.incomplete += 1;
        if pending == 0 {
            inner.ready.push(id.index(), None);
            self.shared.work_cv.notify_one();
        }
        inner.overhead += t0.elapsed();
        id
    }

    /// Blocks until every submitted task has completed.
    ///
    /// Returns the first task panic as an error (remaining tasks are still
    /// drained so the runtime stays usable). The error names the panicking
    /// task's label, so a long-running caller (e.g. a serving loop) can log
    /// which subgraph died.
    pub fn taskwait(&self) -> Result<(), String> {
        let mut inner = self.shared.inner.lock();
        while inner.incomplete > 0 {
            inner.wait(&self.shared.done_cv);
        }
        let result = match inner.panicked.take() {
            Some(msg) => Err(msg),
            None => Ok(()),
        };
        // Taskwait is the epoch barrier of the happens-before model: flush
        // the recorder's worker shards and advance its epoch so accesses
        // on either side of this wait are barrier-ordered, never racy.
        let recorder = inner.validation.clone();
        drop(inner);
        if let Some(rec) = recorder {
            rec.barrier();
        }
        result
    }

    /// Aggregate statistics over all tasks completed so far.
    pub fn stats(&self) -> RuntimeStats {
        let inner = self.shared.inner.lock();
        RuntimeStats::from_records(&inner.records, inner.overhead)
    }

    /// Removes and returns the trace collected so far.
    pub fn take_records(&self) -> Vec<TaskRecord> {
        std::mem::take(&mut self.shared.inner.lock().records)
    }

    /// Clears dependency history (so region ids can be reused for the next
    /// batch) and the trace. Must be called only when idle.
    ///
    /// # Panics
    /// Panics if tasks are still in flight.
    pub fn reset(&self) {
        let mut inner = self.shared.inner.lock();
        assert_eq!(inner.incomplete, 0, "reset() while tasks are in flight");
        inner.deps.clear();
        inner.tasks.clear();
        inner.records.clear();
        inner.overhead = Duration::ZERO;
        // Task indices restart at zero, so they must no longer resolve
        // successor lists against a previously replayed plan.
        inner.replayed = None;
    }

    /// Re-submits a whole [`CompiledPlan`] in one pass — the cheap
    /// steady-state path for graphs whose shape repeats batch after batch.
    ///
    /// Equivalent to `reset()` followed by submitting every task of the
    /// plan live, except that no dependency resolution happens: predecessor
    /// counts and successor lists were frozen at compile time, so the cost
    /// is one lock acquisition plus a copy of the per-task bookkeeping.
    /// Like `reset()`, this clears the previous batch's trace records and
    /// overhead accounting, so a long-running caller never accumulates
    /// per-batch state. Pair with [`Runtime::taskwait`] as usual.
    ///
    /// Returns the re-submission cost. It is measured while the runtime
    /// lock is still held — workers cannot start until the lock drops, so
    /// the figure is pure bookkeeping time, not contaminated by task
    /// execution stealing the caller's core.
    ///
    /// After the first replay of a given plan size, this path performs no
    /// heap allocations: task bodies are `Arc` clones of the plan's shared
    /// bodies, successor lists are read from the plan itself at completion
    /// time, and the bookkeeping vectors retain their capacity across
    /// replays.
    ///
    /// # Panics
    /// Panics if tasks are still in flight.
    pub fn replay(&self, plan: &Arc<CompiledPlan>) -> Duration {
        let t0 = Instant::now();
        let mut inner = self.shared.inner.lock();
        assert_eq!(inner.incomplete, 0, "replay() while tasks are in flight");
        inner.deps.clear();
        inner.tasks.clear();
        inner.records.clear();
        inner.overhead = Duration::ZERO;
        inner.tasks.reserve(plan.tasks.len());
        for (i, t) in plan.tasks.iter().enumerate() {
            inner.tasks.push(TaskMeta {
                label: t.label,
                tag: t.tag,
                working_set_bytes: t.working_set_bytes,
                pending: plan.pending[i],
                succs: Vec::new(),
                completed: false,
                body: Some(TaskBody::Shared(t.body.clone())),
            });
        }
        inner.replayed = Some(plan.clone());
        inner.incomplete = plan.tasks.len();
        for &root in &plan.roots {
            inner.ready.push(root, None);
        }
        let took = t0.elapsed();
        inner.overhead += took;
        drop(inner);
        if !plan.roots.is_empty() {
            self.shared.work_cv.notify_all();
        }
        took
    }

    /// Installs (or removes, with `None`) an [`AccessRecorder`]:
    /// while set, every task body — live or replayed — runs inside a
    /// [`TaskScope`] so `record_read`/`record_write` calls made by the
    /// body land in the recorder attributed to the task's index.
    ///
    /// Validation mode costs one `Arc` clone per task plus the recording
    /// itself; with no recorder installed the per-access overhead is a
    /// single relaxed atomic load. Install while idle (between
    /// `taskwait`s) so a batch is observed in full or not at all.
    pub fn set_validation(&self, recorder: Option<Arc<AccessRecorder>>) {
        let mut inner = self.shared.inner.lock();
        let was = inner.validation.is_some();
        let now = recorder.is_some();
        inner.validation = recorder;
        drop(inner);
        if was != now {
            validate::validation_installed(now);
        }
    }

    /// Installs (or removes, with `None`) a [`FaultPlan`]: while set,
    /// every task body — live or replayed — is preceded by a seeded,
    /// deterministic decision to run clean, panic, or straggle
    /// (see [`crate::fault`]).
    ///
    /// Injection mode costs one `Arc` clone per task plus the decision
    /// hash; with no plan installed the per-task overhead is a single
    /// relaxed atomic load. Install while idle (between `taskwait`s) so a
    /// batch is faulted in full or not at all.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        let mut inner = self.shared.inner.lock();
        let was = inner.fault.is_some();
        let now = plan.is_some();
        inner.fault = plan;
        drop(inner);
        if was != now {
            fault::fault_installed(now);
        }
    }

    /// Installs (or removes, with `None`) a [`CancelCell`]: while set,
    /// workers check the cell before each task body and, once it has been
    /// claimed by a competing copy of the same request, complete the
    /// remaining tasks of the current epoch *without running their
    /// bodies* — the losing side of a hedged pair stops burning executor
    /// time mid-replay.
    ///
    /// Skipped bodies still consume their fault draw (see
    /// [`crate::fault`]), so seeded injection stays schedule-independent.
    /// Unlike a panic, a cancelled epoch is not an error: `taskwait`
    /// returns `Ok`, and a replayed plan stays valid because forward-pass
    /// slots are fully overwritten by the next replay — the embedder must
    /// simply not read outputs of an epoch whose token was claimed.
    ///
    /// Install while idle (between `taskwait`s) so an epoch observes one
    /// token for its whole lifetime; [`Runtime::shutdown`] clears it.
    pub fn set_cancel_token(&self, cell: Option<Arc<CancelCell>>) {
        self.shared.inner.lock().cancel = cell;
    }

    /// True when the installed cancel token (if any) has been claimed —
    /// i.e. the epoch that just ran may have skipped bodies, and its
    /// outputs must not be read.
    pub fn cancel_claimed(&self) -> bool {
        self.shared
            .inner
            .lock()
            .cancel
            .as_ref()
            .is_some_and(|c| c.is_claimed())
    }

    /// Installs (or removes, with `None`) a ready-queue script: while set,
    /// workers pop ready tasks in exactly the scripted order (see
    /// [`crate::scheduler::ReadySet::set_script`]). This is how the
    /// schedule-exploration prong of `bpar-verify` replays one specific
    /// dependency-consistent topological order per run.
    ///
    /// The scripted order is only faithful with a single worker (with more
    /// workers, pops interleave with completions non-deterministically).
    /// Install while idle; a script does not reset on `replay`, so install
    /// a fresh one per explored schedule.
    pub fn set_schedule_script(&self, order: Option<Arc<[usize]>>) {
        self.shared.inner.lock().ready.set_script(order);
    }

    /// Convenience: submit a closure with explicit region clauses.
    pub fn spawn(
        &self,
        label: &'static str,
        ins: impl IntoIterator<Item = RegionId>,
        outs: impl IntoIterator<Item = RegionId>,
        body: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.submit(TaskSpec::new(label).ins(ins).outs(outs).body(body))
    }

    /// Drains in-flight work and joins every worker thread. Idempotent;
    /// also invoked by `Drop`, so long-running embedders (serving loops)
    /// can either call this explicitly to bound teardown or simply drop
    /// the runtime.
    ///
    /// Tasks already submitted still run to completion before the workers
    /// exit (the shutdown flag is only honoured once the ready set is
    /// empty), so no work is lost.
    pub fn shutdown(&mut self) {
        // Balance the global validation/fault users counters if the
        // embedder never uninstalled its recorder or plan.
        self.set_validation(None);
        self.set_fault_plan(None);
        self.set_cancel_token(None);
        {
            let mut inner = self.shared.inner.lock();
            if inner.shutdown && self.workers.is_empty() {
                return;
            }
            inner.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How many `work_cv` wakeups a completing worker must issue after
/// queueing `queued` newly released tasks.
///
/// On the classic path (no script, no direct handoff) the completing
/// worker takes one of the queued tasks itself on its next loop
/// iteration, so only the tasks *beyond* that one need a peer woken.
/// That assumption breaks in two cases, and under-notifying strands
/// ready tasks until the next unrelated wakeup:
///
/// * a schedule script is installed — the script may withhold every
///   queued task from this worker (scripted pops can target any task,
///   and the single scripted driver may be a *different* worker), so
///   every queued task needs a wakeup;
/// * the completing worker already took a successor by direct handoff —
///   its next iteration consumes the handoff, not the queue, so again
///   every queued task needs a peer.
fn wake_count(queued: usize, script_active: bool, direct_taken: bool) -> usize {
    if script_active || direct_taken {
        queued
    } else {
        queued.saturating_sub(1)
    }
}

/// Body of each worker thread.
fn worker_loop(shared: Arc<Shared>, worker: usize) {
    let mut inner = shared.inner.lock();
    // Immediate-successor execution (work-stealing policy only): the
    // first successor released by the task this worker just completed,
    // run next without ever touching a queue. The successor's inputs are
    // the completed task's outputs — still in this worker's cache.
    let mut handoff: Option<usize> = None;
    loop {
        if let Some(tid) = handoff.take().or_else(|| inner.ready.pop(worker)) {
            let body = inner.tasks[tid]
                .body
                .take()
                .expect("ready task lost its body");
            let recorder = inner.validation.clone();
            // `fault::active()` keeps the injection-off fast path at one
            // relaxed load; the per-task clone happens only while some
            // runtime has a plan installed.
            let plan = if fault::active() {
                inner.fault.clone()
            } else {
                None
            };
            let label = inner.tasks[tid].label;
            // A panic poisons the current wait epoch: the graph has
            // already failed, and a dependent of the dead task would
            // observe missing outputs if its body ran (it was only
            // released *because* completion bookkeeping must proceed to
            // keep taskwait from deadlocking). Poisoned tasks complete
            // without running their bodies.
            let poisoned = inner.panicked.is_some();
            // A claimed cancel token skips bodies the same way poisoning
            // does, but as a success: a competing copy of this request
            // already won, so the rest of this epoch is wasted work.
            let cancelled =
                !poisoned && inner.cancel.as_ref().is_some_and(|cell| cell.is_claimed());
            let start = shared.epoch.elapsed().as_secs_f64();
            drop(inner);

            let result = if poisoned || cancelled {
                // Still consume this task's fault draw: every task must
                // advance its occurrence counter exactly once per
                // execution, or which tasks drew would depend on worker
                // timing and same-seed runs would diverge.
                if let Some(plan) = plan {
                    plan.decide(tid, label);
                }
                drop(body);
                Ok(())
            } else {
                let _scope = recorder.map(|rec| TaskScope::enter_on(rec, tid, worker));
                std::panic::catch_unwind(AssertUnwindSafe(move || {
                    if let Some(plan) = plan {
                        plan.apply(tid, label);
                    }
                    body.run();
                }))
            };

            let end = shared.epoch.elapsed().as_secs_f64();
            let t0 = Instant::now();
            inner = shared.inner.lock();
            if let Err(payload) = result {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "task panicked".to_string());
                if inner.panicked.is_none() {
                    let label = inner.tasks[tid].label;
                    inner.panicked = Some(format!("task '{label}' panicked: {msg}"));
                }
            }
            if inner.record_trace {
                let m = &inner.tasks[tid];
                let rec = TaskRecord {
                    id: tid,
                    label: m.label,
                    tag: m.tag,
                    worker,
                    start,
                    end,
                    working_set_bytes: m.working_set_bytes,
                };
                inner.records.push(rec);
            }
            inner.tasks[tid].completed = true;
            // Replayed tasks keep their successor lists in the plan (frozen
            // at compile time, shared by every replay); live tasks own
            // theirs and surrender them on completion. Tasks submitted live
            // after a replay get indices beyond the plan and fall through
            // to the owned path.
            let frozen = match &inner.replayed {
                Some(p) if tid < p.tasks.len() => Some(p.clone()),
                _ => None,
            };
            let direct = inner.ready.direct_handoff();
            let mut queued = 0;
            if let Some(plan) = frozen {
                for &s in &plan.succs[tid] {
                    let sm = &mut inner.tasks[s];
                    sm.pending -= 1;
                    if sm.pending == 0 {
                        if direct && handoff.is_none() {
                            handoff = Some(s);
                        } else {
                            inner.ready.push(s, Some(worker));
                            queued += 1;
                        }
                    }
                }
            } else {
                let succs = std::mem::take(&mut inner.tasks[tid].succs);
                for s in succs {
                    let sm = &mut inner.tasks[s];
                    sm.pending -= 1;
                    if sm.pending == 0 {
                        if direct && handoff.is_none() {
                            handoff = Some(s);
                        } else {
                            inner.ready.push(s, Some(worker));
                            queued += 1;
                        }
                    }
                }
            }
            inner.incomplete -= 1;
            if inner.incomplete == 0 {
                shared.done_cv.notify_all();
            }
            // Wake peers for the newly queued tasks this worker will not
            // take itself (see `wake_count` for the script/handoff cases).
            for _ in 0..wake_count(queued, inner.ready.script_active(), handoff.is_some()) {
                shared.work_cv.notify_one();
            }
            inner.overhead += t0.elapsed();
        } else if inner.shutdown {
            return;
        } else {
            inner.wait(&shared.work_cv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    fn rt(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig {
            workers,
            ..Default::default()
        })
    }

    #[test]
    fn claimed_cancel_token_skips_bodies_without_error() {
        let r = rt(2);
        let cell = StdArc::new(CancelCell::new());
        assert!(cell.try_claim());
        r.set_cancel_token(Some(cell));
        let hit = StdArc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let h = hit.clone();
            r.spawn("t", [RegionId(0)], [RegionId(0)], move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Cancellation is a success, not a poisoned epoch.
        r.taskwait().unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 0);
        // Clearing the token restores normal execution.
        r.set_cancel_token(None);
        let h = hit.clone();
        r.spawn("t", [], [], move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unclaimed_cancel_token_changes_nothing() {
        let r = rt(2);
        let cell = StdArc::new(CancelCell::new());
        r.set_cancel_token(Some(cell.clone()));
        let hit = StdArc::new(AtomicUsize::new(0));
        let h = hit.clone();
        r.spawn("t", [], [], move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert!(!cell.is_claimed());
    }

    #[test]
    fn single_task_runs() {
        let r = rt(2);
        let hit = StdArc::new(AtomicUsize::new(0));
        let h = hit.clone();
        r.spawn("t", [], [], move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chain_executes_in_order() {
        let r = rt(4);
        let log = StdArc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let l = log.clone();
            // Chain through region 0: each task is RAW+WAW on the previous.
            r.spawn("t", [RegionId(0)], [RegionId(0)], move || {
                l.lock().push(i);
            });
        }
        r.taskwait().unwrap();
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_all_run() {
        let r = rt(4);
        let count = StdArc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let c = count.clone();
            r.spawn("t", [], [RegionId(i)], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        r.taskwait().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn diamond_dependency_order() {
        let r = rt(4);
        let state = StdArc::new(Mutex::new(Vec::new()));
        for (name, ins, outs) in [
            ("a", vec![], vec![RegionId(1)]),
            ("b", vec![RegionId(1)], vec![RegionId(2)]),
            ("c", vec![RegionId(1)], vec![RegionId(3)]),
            ("d", vec![RegionId(2), RegionId(3)], vec![RegionId(4)]),
        ] {
            let s = state.clone();
            r.spawn(name, ins, outs, move || {
                s.lock().push(name);
            });
        }
        r.taskwait().unwrap();
        let order = state.lock().clone();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], "a");
        assert_eq!(order[3], "d");
    }

    #[test]
    fn taskwait_propagates_panic_and_runtime_survives() {
        let r = rt(2);
        r.spawn("boom", [], [], || panic!("kaboom"));
        let err = r.taskwait().unwrap_err();
        assert!(err.contains("kaboom"));
        // The error names the failing task so callers can log which
        // subgraph died.
        assert!(err.contains("'boom'"), "missing label in: {err}");
        // Runtime still works afterwards.
        let ok = StdArc::new(AtomicUsize::new(0));
        let o = ok.clone();
        r.spawn("t", [], [], move || {
            o.store(7, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(ok.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn panic_poisons_epoch_dependents_released_but_skipped() {
        // A dependent of a panicked task must still be *released* —
        // otherwise taskwait would deadlock — but its body must NOT run:
        // the producer died before writing its outputs, so running the
        // dependent would crash on missing state (a cascading secondary
        // panic that masks the real failure).
        let r = rt(2);
        let hit = StdArc::new(AtomicUsize::new(0));
        r.spawn("boom", [], [RegionId(1)], || panic!("x"));
        let h = hit.clone();
        r.spawn("after", [RegionId(1)], [], move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let err = r.taskwait().unwrap_err();
        assert!(err.contains("'boom'"), "first panic must surface: {err}");
        assert_eq!(
            hit.load(Ordering::SeqCst),
            0,
            "dependent body must be skipped in a poisoned epoch"
        );
        // The poison clears with the failed wait: the dependent region is
        // writable again and fresh tasks run normally.
        let h = hit.clone();
        r.spawn("retry", [], [RegionId(1)], move || {
            h.fetch_add(10, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn stats_and_trace_are_recorded() {
        let r = rt(2);
        for i in 0..10 {
            r.submit(
                TaskSpec::new("t")
                    .tag(i)
                    .outs([RegionId(i)])
                    .working_set(1000)
                    .body(|| std::thread::sleep(Duration::from_millis(2))),
            );
        }
        r.taskwait().unwrap();
        let stats = r.stats();
        assert_eq!(stats.tasks, 10);
        assert!(
            stats.total_task_time >= 0.019,
            "got {}",
            stats.total_task_time
        );
        assert!(stats.peak_working_set_bytes >= 1000);
        let records = r.take_records();
        assert_eq!(records.len(), 10);
        assert!(records.iter().all(|rec| rec.end >= rec.start));
    }

    #[test]
    fn taskwait_without_tasks_returns_immediately() {
        let r = rt(1);
        r.taskwait().unwrap();
    }

    #[test]
    fn reset_allows_region_reuse() {
        let r = rt(2);
        let flag = StdArc::new(AtomicUsize::new(0));
        let f = flag.clone();
        r.spawn("w", [], [RegionId(5)], move || {
            f.store(1, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        r.reset();
        // After reset, region 5 has no last writer: task is immediately ready.
        let f = flag.clone();
        r.spawn("r", [RegionId(5)], [], move || {
            assert_eq!(f.load(Ordering::SeqCst), 1);
        });
        r.taskwait().unwrap();
        assert_eq!(r.stats().tasks, 1); // trace was cleared by reset
    }

    #[test]
    #[should_panic(expected = "without a body")]
    fn bodyless_spec_is_rejected() {
        let r = rt(1);
        r.submit(TaskSpec::new("nobody"));
    }

    #[test]
    fn many_tasks_with_random_deps_complete() {
        let r = rt(4);
        let count = StdArc::new(AtomicUsize::new(0));
        for i in 0..500u64 {
            let c = count.clone();
            let ins = vec![RegionId(i % 13), RegionId((i * 7) % 13)];
            let outs = vec![RegionId((i * 3) % 13)];
            r.spawn("t", ins, outs, move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        r.taskwait().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn fifo_policy_also_executes_correctly() {
        let r = Runtime::new(RuntimeConfig {
            workers: 3,
            policy: SchedulerPolicy::Fifo,
            record_trace: true,
        });
        let log = StdArc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let l = log.clone();
            r.spawn("t", [RegionId(0)], [RegionId(0)], move || {
                l.lock().push(i);
            });
        }
        r.taskwait().unwrap();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn workers_zero_uses_available_parallelism() {
        let r = rt(0);
        assert!(r.workers() >= 1);
    }

    #[test]
    fn shutdown_joins_workers_and_is_idempotent() {
        let mut r = rt(3);
        let count = StdArc::new(AtomicUsize::new(0));
        for i in 0..32 {
            let c = count.clone();
            r.spawn("t", [], [RegionId(i)], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        r.taskwait().unwrap();
        r.shutdown();
        r.shutdown(); // second call is a no-op
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn replay_runs_plan_bodies_each_time() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(4);
        let count = StdArc::new(AtomicUsize::new(0));
        let mut b = PlanBuilder::new();
        for i in 0..20u64 {
            let c = count.clone();
            b.submit(PlanSpec::new("t").outs([RegionId(i)]).body(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let plan = Arc::new(b.compile());
        for round in 1..=3 {
            r.replay(&plan);
            r.taskwait().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 20 * round);
        }
    }

    #[test]
    fn replay_respects_frozen_dependency_order() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(4);
        let log = StdArc::new(Mutex::new(Vec::new()));
        let mut b = PlanBuilder::new();
        for i in 0..20 {
            let l = log.clone();
            b.submit(
                PlanSpec::new("t")
                    .ins([RegionId(0)])
                    .outs([RegionId(0)])
                    .body(move || l.lock().push(i)),
            );
        }
        let plan = Arc::new(b.compile());
        for _ in 0..3 {
            log.lock().clear();
            r.replay(&plan);
            r.taskwait().unwrap();
            assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
        }
    }

    #[test]
    fn replay_clears_previous_trace_and_stats() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(2);
        let mut b = PlanBuilder::new();
        for i in 0..7u64 {
            b.submit(PlanSpec::new("t").outs([RegionId(i)]).body(|| {}));
        }
        let plan = Arc::new(b.compile());
        for _ in 0..50 {
            r.replay(&plan);
            r.taskwait().unwrap();
            // Records never accumulate across replays: each batch's trace
            // replaces the previous one, so long serving runs stay bounded.
            assert_eq!(r.stats().tasks, 7);
            assert_eq!(r.take_records().len(), 7);
        }
    }

    #[test]
    fn replay_panic_surfaces_and_plan_stays_replayable() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(2);
        let hits = StdArc::new(AtomicUsize::new(0));
        let fail = StdArc::new(AtomicUsize::new(1));
        let mut b = PlanBuilder::new();
        let h = hits.clone();
        b.submit(PlanSpec::new("ok").outs([RegionId(0)]).body(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let f = fail.clone();
        b.submit(PlanSpec::new("maybe").ins([RegionId(0)]).body(move || {
            if f.load(Ordering::SeqCst) == 1 {
                panic!("injected replay failure");
            }
        }));
        let plan = Arc::new(b.compile());
        r.replay(&plan);
        let err = r.taskwait().unwrap_err();
        assert!(err.contains("injected replay failure"), "{err}");
        assert!(err.contains("'maybe'"), "{err}");
        // Same runtime, same plan, failure disarmed: replay succeeds.
        fail.store(0, Ordering::SeqCst);
        r.replay(&plan);
        r.taskwait().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn replay_interleaves_with_live_submission() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(3);
        let count = StdArc::new(AtomicUsize::new(0));
        let mut b = PlanBuilder::new();
        let c = count.clone();
        b.submit(PlanSpec::new("planned").outs([RegionId(0)]).body(move || {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        let plan = Arc::new(b.compile());
        r.replay(&plan);
        r.taskwait().unwrap();
        // A live batch between replays works on the same runtime.
        let c = count.clone();
        r.spawn("live", [], [RegionId(0)], move || {
            c.fetch_add(10, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        r.replay(&plan);
        r.taskwait().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn empty_plan_replay_is_a_noop() {
        use crate::plan::PlanBuilder;
        let r = rt(1);
        let plan = Arc::new(PlanBuilder::new().compile());
        r.replay(&plan);
        r.taskwait().unwrap();
        assert_eq!(r.stats().tasks, 0);
    }

    #[test]
    fn validation_mode_attributes_accesses_to_tasks() {
        use crate::plan::{PlanBuilder, PlanSpec};
        use crate::validate::{record_read, record_write, AccessKind, AccessRecorder};

        let r = rt(2);
        let rec = StdArc::new(AccessRecorder::new());
        r.set_validation(Some(rec.clone()));

        // Live path: two chained tasks whose bodies self-report accesses.
        r.spawn("w", [], [RegionId(4)], || record_write(RegionId(4)));
        r.spawn("r", [RegionId(4)], [], || record_read(RegionId(4)));
        r.taskwait().unwrap();
        let ev = rec.take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].task, ev[0].kind), (0, AccessKind::Write));
        assert_eq!((ev[1].task, ev[1].kind), (1, AccessKind::Read));

        // Replay path: the same attribution works for compiled plans.
        let mut b = PlanBuilder::new();
        b.submit(
            PlanSpec::new("p")
                .outs([RegionId(9)])
                .body(|| record_write(RegionId(9))),
        );
        let plan = Arc::new(b.compile());
        r.replay(&plan);
        r.taskwait().unwrap();
        let ev = rec.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].task, ev[0].region), (0, RegionId(9)));

        // Uninstalling stops recording.
        r.set_validation(None);
        r.spawn("q", [], [RegionId(1)], || record_write(RegionId(1)));
        r.taskwait().unwrap();
        assert!(rec.take_events().is_empty());
    }

    #[test]
    fn adversarial_policies_still_respect_dependencies() {
        use crate::scheduler::AdversarialOrder;
        for order in [
            AdversarialOrder::Reverse,
            AdversarialOrder::Random(7),
            AdversarialOrder::Random(999),
        ] {
            let r = Runtime::new(RuntimeConfig {
                workers: 1,
                policy: SchedulerPolicy::Adversarial(order),
                record_trace: false,
            });
            let log = StdArc::new(Mutex::new(Vec::new()));
            for i in 0..20 {
                let l = log.clone();
                // A dependency chain leaves no scheduling freedom: every
                // order must execute it 0..20.
                r.spawn("t", [RegionId(0)], [RegionId(0)], move || {
                    l.lock().push(i);
                });
            }
            r.taskwait().unwrap();
            assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>(), "{order:?}");
        }
    }

    #[test]
    fn fault_plan_injects_panic_that_surfaces_at_taskwait() {
        use crate::fault::{FaultConfig, FaultPlan};
        let r = rt(2);
        let plan = StdArc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            panic_rate: 1.0,
            ..FaultConfig::default()
        }));
        r.set_fault_plan(Some(plan.clone()));
        let ran = StdArc::new(AtomicUsize::new(0));
        let c = ran.clone();
        r.spawn("victim", [], [], move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let err = r.taskwait().unwrap_err();
        assert!(err.contains("injected fault"), "{err}");
        assert!(err.contains("'victim'"), "{err}");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "body must not run");
        assert_eq!(plan.injected_panics(), 1);
        // Uninstalling restores clean execution.
        r.set_fault_plan(None);
        let c = ran.clone();
        r.spawn("victim", [], [], move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        r.taskwait().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fault_plan_straggle_delays_but_completes() {
        use crate::fault::{FaultConfig, FaultPlan};
        let r = rt(2);
        let plan = StdArc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            straggle_rate: 1.0,
            straggle: Duration::from_millis(2),
            ..FaultConfig::default()
        }));
        r.set_fault_plan(Some(plan.clone()));
        let count = StdArc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        for i in 0..4 {
            let c = count.clone();
            r.spawn("slow", [], [RegionId(i)], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        r.taskwait().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(plan.injected_straggles(), 4);
        // 4 tasks × 2ms over 2 workers ≥ ~4ms of injected delay.
        assert!(t0.elapsed() >= Duration::from_millis(4));
        r.set_fault_plan(None);
    }

    #[test]
    fn fault_plan_applies_to_replayed_plans() {
        use crate::fault::{FaultConfig, FaultPlan};
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = rt(2);
        let mut b = PlanBuilder::new();
        for i in 0..8u64 {
            b.submit(PlanSpec::new("t").outs([RegionId(i)]).body(|| {}));
        }
        let compiled = Arc::new(b.compile());
        let fp = StdArc::new(FaultPlan::new(FaultConfig {
            seed: 13,
            panic_rate: 1.0,
            panic_budget: 3,
            ..FaultConfig::default()
        }));
        r.set_fault_plan(Some(fp.clone()));
        // Replays fail while budget remains, then run clean.
        let mut failures = 0;
        for _ in 0..5 {
            r.replay(&compiled);
            if r.taskwait().is_err() {
                failures += 1;
            }
        }
        assert_eq!(fp.injected_panics(), 3);
        assert!(failures >= 1, "budgeted panics must fail some replay");
        r.replay(&compiled);
        r.taskwait().unwrap(); // budget exhausted: clean
        r.set_fault_plan(None);
    }

    #[test]
    fn schedule_script_replays_exact_topological_order() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = Runtime::new(RuntimeConfig {
            workers: 1,
            policy: SchedulerPolicy::Fifo,
            record_trace: false,
        });
        // Four independent tasks: every permutation is a legal schedule.
        let log = StdArc::new(Mutex::new(Vec::new()));
        let mut b = PlanBuilder::new();
        for i in 0..4u64 {
            let l = log.clone();
            b.submit(PlanSpec::new("t").outs([RegionId(i)]).body(move || {
                l.lock().push(i as usize);
            }));
        }
        let plan = Arc::new(b.compile());
        for order in [vec![2, 0, 3, 1], vec![3, 2, 1, 0], vec![0, 1, 2, 3]] {
            log.lock().clear();
            r.set_schedule_script(Some(order.clone().into()));
            r.replay(&plan);
            r.taskwait().unwrap();
            assert_eq!(*log.lock(), order);
        }
        // Clearing the script restores the policy order.
        r.set_schedule_script(None);
        log.lock().clear();
        r.replay(&plan);
        r.taskwait().unwrap();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shutdown_drains_submitted_work() {
        // Work submitted but not yet awaited still completes before the
        // workers join: shutdown must not drop queued tasks.
        let mut r = rt(2);
        let count = StdArc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = count.clone();
            // Chain through one region so tasks release one another while
            // the shutdown flag is already set.
            r.spawn("chain", [RegionId(0)], [RegionId(0)], move || {
                std::thread::sleep(Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        r.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn wake_count_covers_script_and_handoff_cases() {
        // Classic path: the completing worker takes one queued task
        // itself, so n queued tasks need n-1 peer wakeups.
        assert_eq!(wake_count(0, false, false), 0);
        assert_eq!(wake_count(1, false, false), 0);
        assert_eq!(wake_count(3, false, false), 2);
        // Script installed: the script may withhold every queued task
        // from this worker. The old `for _ in 1..released` loop issued 0
        // wakeups for 1 released task here.
        assert_eq!(wake_count(1, true, false), 1);
        assert_eq!(wake_count(3, true, false), 3);
        // Direct handoff taken: this worker's next iteration consumes the
        // handoff, not the queue.
        assert_eq!(wake_count(1, false, true), 1);
        assert_eq!(wake_count(2, true, true), 2);
        assert_eq!(wake_count(0, true, true), 0);
    }

    #[test]
    fn scripted_run_never_strands_a_ready_task() {
        use crate::plan::{PlanBuilder, PlanSpec};
        // Regression for wakeup under-notification: a fan-out whose
        // script takes the released tasks in an order the policy would
        // not. Every task must still run (no stranded ready task), driven
        // by a single worker as set_script's contract requires. The old
        // accounting skipped one wakeup per completion on the assumption
        // that the completing worker takes a released task — under a
        // script it may not, and only the always-pop-before-wait worker
        // loop hid the bug; this pins the contract directly.
        let r = Runtime::new(RuntimeConfig {
            workers: 1,
            policy: SchedulerPolicy::Fifo,
            record_trace: false,
        });
        let log = StdArc::new(Mutex::new(Vec::new()));
        let mut b = PlanBuilder::new();
        // Root 0 releases 1..=4 at once; the script defers task 1 to last.
        let l = log.clone();
        b.submit(PlanSpec::new("root").outs([RegionId(0)]).body(move || {
            l.lock().push(0usize);
        }));
        for i in 1..5u64 {
            let l = log.clone();
            b.submit(
                PlanSpec::new("leaf")
                    .ins([RegionId(0)])
                    .outs([RegionId(i)])
                    .body(move || {
                        l.lock().push(i as usize);
                    }),
            );
        }
        let plan = Arc::new(b.compile());
        for _ in 0..50 {
            log.lock().clear();
            r.set_schedule_script(Some(vec![0, 4, 3, 2, 1].into()));
            r.replay(&plan);
            r.taskwait().unwrap();
            assert_eq!(*log.lock(), vec![0, 4, 3, 2, 1]);
        }
    }

    #[test]
    fn work_stealing_executes_chains_correctly() {
        let r = Runtime::new(RuntimeConfig {
            workers: 4,
            policy: SchedulerPolicy::WorkStealing,
            record_trace: true,
        });
        let log = StdArc::new(Mutex::new(Vec::new()));
        // Four independent chains of dependent tasks: exercises direct
        // handoff (each completion releases exactly one successor).
        for c in 0..4u64 {
            for i in 0..25usize {
                let l = log.clone();
                r.spawn("link", [RegionId(c)], [RegionId(c)], move || {
                    l.lock().push((c, i));
                });
            }
        }
        r.taskwait().unwrap();
        let got = log.lock().clone();
        assert_eq!(got.len(), 100);
        for c in 0..4u64 {
            let chain: Vec<usize> = got
                .iter()
                .filter(|&&(cc, _)| cc == c)
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(chain, (0..25).collect::<Vec<_>>(), "chain {c} order");
        }
    }

    #[test]
    fn work_stealing_fan_out_runs_every_task_exactly_once() {
        // A completion that releases many successors at once: one goes by
        // direct handoff, the rest are queued and must all be woken (the
        // handoff arm of wake_count).
        let r = Runtime::new(RuntimeConfig {
            workers: 4,
            policy: SchedulerPolicy::WorkStealing,
            record_trace: false,
        });
        for _ in 0..20 {
            let count = StdArc::new(AtomicUsize::new(0));
            let c0 = count.clone();
            r.spawn("root", [], [RegionId(0)], move || {
                c0.fetch_add(1, Ordering::SeqCst);
            });
            for i in 1..32u64 {
                let c = count.clone();
                r.spawn("leaf", [RegionId(0)], [RegionId(i)], move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            r.taskwait().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 32);
            r.reset();
        }
    }

    #[test]
    fn work_stealing_replay_matches_live_results() {
        use crate::plan::{PlanBuilder, PlanSpec};
        let r = Runtime::new(RuntimeConfig {
            workers: 3,
            policy: SchedulerPolicy::WorkStealing,
            record_trace: false,
        });
        let count = StdArc::new(AtomicUsize::new(0));
        let mut b = PlanBuilder::new();
        for i in 0..30u64 {
            let c = count.clone();
            let (ins, outs) = if i % 5 == 0 {
                (vec![], vec![RegionId(i)])
            } else {
                (vec![RegionId(i - 1)], vec![RegionId(i)])
            };
            b.submit(PlanSpec::new("t").ins(ins).outs(outs).body(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let plan = Arc::new(b.compile());
        for replay in 1..=10 {
            r.replay(&plan);
            r.taskwait().unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 30 * replay);
        }
    }
}
