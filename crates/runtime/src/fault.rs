//! Deterministic fault injection: making tasks panic or straggle on purpose.
//!
//! A production serving system built on the barrier-free task model has to
//! survive the failure modes the paper's §IV experiments never exercise —
//! a task body that panics, a straggler that sleeps through its deadline,
//! a batch that dies half-way. This module provides the *injection* half
//! of that story; the *recovery* half (retry/backoff, circuit breaking)
//! lives in `bpar-serve`.
//!
//! A [`FaultPlan`] is installed on a [`crate::Runtime`] via
//! [`crate::Runtime::set_fault_plan`], exactly like the
//! [`crate::validate::AccessRecorder`]: opt-in, always compiled, and when
//! no plan is installed the per-task cost is a single relaxed atomic load.
//! While installed, the worker loop consults the plan before running every
//! task body and either lets it run, makes it panic, or delays it by a
//! configured straggle duration.
//!
//! # Determinism
//!
//! Every decision is a pure function of
//! `(seed, occurrence, task id, label)` where *occurrence* counts how many
//! times this `(task id, label)` pair has been asked before under this
//! plan. Two runs that execute the same sequence of batches under plans
//! with the same configuration therefore inject byte-identical faults —
//! the property the chaos CI job and the recovery proptests rely on. The
//! occurrence component is what lets a retried batch draw a *fresh*
//! decision: replayed plans reuse task ids, so without it a poisoned
//! batch would fail identically forever and retries could never succeed.
//!
//! The worker loop consumes a draw even for tasks whose bodies it skips
//! because an earlier task already poisoned the wait epoch — so every
//! task advances its occurrence counter exactly once per execution and
//! the injection counters are schedule-independent. Consequently
//! [`FaultPlan::injected_panics`] / [`FaultPlan::injected_straggles`]
//! count *decisions*, which can slightly exceed faults actually
//! *delivered* (a panic decided for an already-poisoned task never
//! fires).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Configuration of a [`FaultPlan`]. `Copy`, so it can ride inside CLI
/// and load-generator config structs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-task decision hash.
    pub seed: u64,
    /// Fraction of task executions that panic (`0.0..=1.0`). Note that a
    /// *batch* fails if **any** of its tasks panics, so the per-batch
    /// failure probability is roughly `1 - (1 - panic_rate)^tasks`.
    pub panic_rate: f64,
    /// Fraction of task executions that sleep for [`Self::straggle`]
    /// before running (straggler simulation). Stragglers do not fail the
    /// batch; they inflate its latency.
    pub straggle_rate: f64,
    /// How long an injected straggler sleeps.
    pub straggle: Duration,
    /// Upper bound on the number of panics the plan will inject over its
    /// lifetime; `u64::MAX` means unlimited. A finite budget gives tests
    /// a deterministic "storm then calm" shape: once the budget is spent
    /// every later execution is clean, so a circuit breaker can be
    /// observed opening *and* closing in one run.
    pub panic_budget: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_rate: 0.0,
            straggle_rate: 0.0,
            straggle: Duration::from_micros(200),
            panic_budget: u64::MAX,
        }
    }
}

/// What the plan decided for one task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Run the body untouched.
    None,
    /// Panic instead of running the body.
    Panic,
    /// Sleep for the configured straggle duration, then run the body.
    Straggle(Duration),
}

/// A seeded, deterministic fault plan. Install with
/// [`crate::Runtime::set_fault_plan`]; share via `Arc` to read the
/// injection counters while the runtime executes.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// `(task id, label hash) →` times this pair has been decided.
    occurrences: Mutex<HashMap<(usize, u64), u64>>,
    panics: AtomicU64,
    straggles: AtomicU64,
}

/// FNV-1a over a label so `&'static str` identity never matters.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer — mixes the combined key into a uniform draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with the given configuration and fresh counters.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            occurrences: Mutex::new(HashMap::new()),
            panics: AtomicU64::new(0),
            straggles: AtomicU64::new(0),
        }
    }

    /// The configuration this plan was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Straggler sleeps injected so far.
    pub fn injected_straggles(&self) -> u64 {
        self.straggles.load(Ordering::Relaxed)
    }

    /// Decides the fate of one execution of `task` with `label`,
    /// advancing the `(task, label)` occurrence counter. Deterministic:
    /// the n-th call for a given pair always returns the same action for
    /// the same configuration (budget exhaustion aside).
    pub fn decide(&self, task: usize, label: &str) -> FaultAction {
        let lh = fnv1a(label.as_bytes());
        let occ = {
            let mut map = self.occurrences.lock();
            let slot = map.entry((task, lh)).or_insert(0);
            let occ = *slot;
            *slot += 1;
            occ
        };
        let key = self
            .config
            .seed
            .wrapping_mul(0xD1B54A32D192ED03)
            .wrapping_add(lh)
            .wrapping_add((task as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(occ.wrapping_mul(0xEB44ACCAB455B165));
        // 53 uniform bits → [0, 1).
        let u = (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.config.panic_rate {
            // Atomically claim one unit of panic budget; the exchange is
            // exact, so the budget never overshoots even with many
            // workers deciding concurrently.
            let claimed = self
                .panics
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    (v < self.config.panic_budget).then_some(v + 1)
                })
                .is_ok();
            if claimed {
                return FaultAction::Panic;
            }
            // Budget exhausted: the draw still consumed its occurrence,
            // but the task runs clean.
            return FaultAction::None;
        }
        if u < self.config.panic_rate + self.config.straggle_rate {
            self.straggles.fetch_add(1, Ordering::Relaxed);
            return FaultAction::Straggle(self.config.straggle);
        }
        FaultAction::None
    }

    /// Applies the plan to the task body about to run on this thread.
    /// Called by the worker loop *inside* `catch_unwind`, so an injected
    /// panic surfaces at `taskwait` exactly like an organic one.
    pub(crate) fn apply(&self, task: usize, label: &str) {
        match self.decide(task, label) {
            FaultAction::None => {}
            FaultAction::Panic => {
                panic!(
                    "injected fault [seed {}]: task {task} '{label}'",
                    self.config.seed
                );
            }
            FaultAction::Straggle(d) => std::thread::sleep(d),
        }
    }
}

/// Whether *any* runtime currently has a fault plan installed — lets the
/// worker loop skip the per-task `Option<Arc>` clone on one relaxed load
/// in the (overwhelmingly common) injection-off case.
static FAULT_ACTIVE: AtomicBool = AtomicBool::new(false);

/// How many runtimes currently have a plan installed (guards the flag
/// against one runtime uninstalling while another still injects).
static FAULT_USERS: Mutex<usize> = Mutex::new(0);

pub(crate) fn fault_installed(installed: bool) {
    let mut users = FAULT_USERS.lock();
    if installed {
        *users += 1;
    } else {
        *users = users.saturating_sub(1);
    }
    FAULT_ACTIVE.store(*users > 0, Ordering::Release);
}

pub(crate) fn active() -> bool {
    FAULT_ACTIVE.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, panic_rate: f64, straggle_rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            panic_rate,
            straggle_rate,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn zero_rates_never_inject() {
        let p = plan(42, 0.0, 0.0);
        for task in 0..200 {
            assert_eq!(p.decide(task, "t"), FaultAction::None);
        }
        assert_eq!(p.injected_panics(), 0);
        assert_eq!(p.injected_straggles(), 0);
    }

    #[test]
    fn decisions_replay_byte_identically() {
        let record = |seed: u64| {
            let p = plan(seed, 0.2, 0.2);
            let mut log = Vec::new();
            // Three "batches" over the same task ids, mimicking replays.
            for _ in 0..3 {
                for task in 0..50 {
                    log.push(p.decide(task, "lstm_fwd"));
                }
            }
            log
        };
        assert_eq!(record(7), record(7), "same seed must replay identically");
        assert_ne!(record(7), record(8), "different seeds must diverge");
    }

    #[test]
    fn occurrence_gives_fresh_draws_across_replays() {
        // With a 50% rate, a task that panicked in batch 0 must not be
        // doomed to panic in every later batch: the occurrence component
        // re-rolls it. Statistically some task flips across 20 replays.
        let p = plan(3, 0.5, 0.0);
        let mut flipped = false;
        for task in 0..20 {
            let first = p.decide(task, "t");
            for _ in 0..20 {
                if p.decide(task, "t") != first {
                    flipped = true;
                }
            }
        }
        assert!(flipped, "occurrence must vary decisions across replays");
    }

    #[test]
    fn label_distinguishes_decisions() {
        let a = plan(9, 0.5, 0.0);
        let b = plan(9, 0.5, 0.0);
        let da: Vec<_> = (0..100).map(|t| a.decide(t, "fwd")).collect();
        let db: Vec<_> = (0..100).map(|t| b.decide(t, "bwd")).collect();
        assert_ne!(da, db, "label is part of the key");
    }

    #[test]
    fn rates_partition_roughly() {
        let p = plan(11, 0.3, 0.3);
        let mut panics = 0;
        let mut straggles = 0;
        let n = 3000;
        for task in 0..n {
            match p.decide(task, "t") {
                FaultAction::Panic => panics += 1,
                FaultAction::Straggle(_) => straggles += 1,
                FaultAction::None => {}
            }
        }
        let frac = |c: i32| c as f64 / n as f64;
        assert!((frac(panics) - 0.3).abs() < 0.05, "panics {panics}");
        assert!(
            (frac(straggles) - 0.3).abs() < 0.05,
            "straggles {straggles}"
        );
    }

    #[test]
    fn panic_budget_is_exact() {
        let p = FaultPlan::new(FaultConfig {
            seed: 1,
            panic_rate: 1.0,
            panic_budget: 5,
            ..FaultConfig::default()
        });
        let mut panics = 0;
        for task in 0..100 {
            if p.decide(task, "t") == FaultAction::Panic {
                panics += 1;
            }
        }
        assert_eq!(panics, 5);
        assert_eq!(p.injected_panics(), 5);
        // Exhausted budget leaves later draws clean.
        assert_eq!(p.decide(0, "t"), FaultAction::None);
    }

    #[test]
    fn straggle_carries_configured_duration() {
        let p = FaultPlan::new(FaultConfig {
            seed: 2,
            straggle_rate: 1.0,
            straggle: Duration::from_micros(123),
            ..FaultConfig::default()
        });
        assert_eq!(
            p.decide(0, "t"),
            FaultAction::Straggle(Duration::from_micros(123))
        );
    }
}
