//! # bpar-runtime
//!
//! A task-based runtime system with OmpSs-style data-dependency tracking —
//! the substrate the B-Par execution model runs on.
//!
//! The paper expresses BRNN cell updates as *tasks* annotated with `in`/`out`
//! dependency clauses (`#pragma omp task in(...) out(...)`); a runtime builds
//! the task dependency graph dynamically and schedules ready tasks onto
//! cores with **no per-layer barriers**. This crate reproduces that model:
//!
//! * [`region`] — versioned dependency objects and the RAW/WAR/WAW edge
//!   computation ([`region::DepTracker`]),
//! * [`graph`] — a static [`graph::TaskGraph`] representation consumed both
//!   by the live executor and by the multi-core simulator (`bpar-sim`),
//! * [`runtime`] — the live [`runtime::Runtime`]: worker threads, dynamic
//!   dependency resolution, `taskwait`,
//! * [`scheduler`] — the global-FIFO ready queue, optionally with the
//!   breadth-first *locality-aware* mechanism of the paper (§IV-A),
//! * [`stats`] — per-task trace records, concurrency and working-set
//!   accounting used by the granularity / memory-consumption experiments,
//! * [`trace`] — Chrome-trace (`chrome://tracing` / Perfetto) export of
//!   task timelines.
//!
//! # Example
//!
//! ```
//! use bpar_runtime::prelude::*;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(RuntimeConfig { workers: 2, ..Default::default() });
//! let r = RegionId(0);
//! let hits = Arc::new(AtomicUsize::new(0));
//!
//! // Two tasks with a RAW dependency: the second sees the first's effect.
//! let h = hits.clone();
//! rt.submit(TaskSpec::new("produce").outs([r]).body(move || {
//!     h.fetch_add(1, Ordering::SeqCst);
//! }));
//! let h = hits.clone();
//! rt.submit(TaskSpec::new("consume").ins([r]).body(move || {
//!     assert_eq!(h.load(Ordering::SeqCst), 1);
//! }));
//! rt.taskwait().unwrap();
//! ```

// Unsafe-audit policy (see `bpar-verify::audit`): every crate containing
// unsafe code must force explicit `unsafe` blocks inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cancel;
pub mod fault;
pub mod graph;
pub mod lockwitness;
pub mod plan;
pub mod region;
pub mod runtime;
pub mod scheduler;
pub mod stats;
pub mod task;
pub mod trace;
pub mod validate;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::cancel::CancelCell;
    pub use crate::fault::{FaultAction, FaultConfig, FaultPlan};
    pub use crate::graph::TaskGraph;
    pub use crate::plan::{CompiledPlan, PlanBuilder, PlanSpec};
    pub use crate::region::{DepTracker, RegionId};
    pub use crate::runtime::{Runtime, RuntimeConfig};
    pub use crate::scheduler::{AdversarialOrder, SchedulerPolicy};
    pub use crate::stats::RuntimeStats;
    pub use crate::task::{TaskId, TaskSpec};
    pub use crate::validate::{AccessEvent, AccessKind, AccessRecorder};
}

pub use cancel::CancelCell;
pub use fault::{FaultAction, FaultConfig, FaultPlan};
pub use graph::TaskGraph;
pub use lockwitness::LockWitness;
pub use plan::{CompiledPlan, PlanBuilder, PlanSpec};
pub use region::{DepTracker, RegionId};
pub use runtime::{Runtime, RuntimeConfig};
pub use scheduler::{AdversarialOrder, SchedulerPolicy};
pub use stats::RuntimeStats;
pub use task::{TaskId, TaskSpec};
pub use validate::{
    record_read, record_read_at, record_write, record_write_at, AccessEvent, AccessKind,
    AccessRecorder,
};
