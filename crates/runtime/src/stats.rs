//! Execution statistics and per-task trace records.
//!
//! The paper's §IV-B reports task granularity (count, duration range,
//! average), runtime overhead relative to useful work, average task
//! concurrency, and aggregate working-set sizes. All of those are computed
//! here from the trace the runtime records.

use std::time::Duration;

/// One completed task, as recorded by the runtime.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Task id (submission order).
    pub id: usize,
    /// Task kind label.
    pub label: &'static str,
    /// Client tag.
    pub tag: u64,
    /// Worker that executed the task.
    pub worker: usize,
    /// Start time, seconds since the runtime epoch.
    pub start: f64,
    /// End time, seconds since the runtime epoch.
    pub end: f64,
    /// Declared working-set size in bytes.
    pub working_set_bytes: usize,
}

impl TaskRecord {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Aggregated execution statistics.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Number of completed tasks.
    pub tasks: usize,
    /// Sum of task durations (useful work), seconds.
    pub total_task_time: f64,
    /// Shortest task, seconds.
    pub min_task_time: f64,
    /// Longest task, seconds.
    pub max_task_time: f64,
    /// Wall-clock span from first task start to last task end, seconds.
    pub makespan: f64,
    /// Time-averaged number of concurrently running tasks.
    pub avg_concurrency: f64,
    /// Maximum number of concurrently running tasks.
    pub peak_concurrency: usize,
    /// Time-averaged sum of working sets of concurrently running tasks.
    pub avg_working_set_bytes: f64,
    /// Peak sum of working sets of concurrently running tasks.
    pub peak_working_set_bytes: usize,
    /// Total time spent inside the runtime itself (dependency resolution,
    /// queue operations) rather than in task bodies, seconds.
    pub overhead_time: f64,
}

impl RuntimeStats {
    /// Mean task duration, seconds.
    pub fn avg_task_time(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.total_task_time / self.tasks as f64
        }
    }

    /// Ratio of runtime overhead to useful task time. The paper reports
    /// this staying below 0.1 (overhead "ten times smaller").
    pub fn overhead_ratio(&self) -> f64 {
        if self.total_task_time == 0.0 {
            0.0
        } else {
            self.overhead_time / self.total_task_time
        }
    }

    /// Builds aggregate statistics from a trace.
    ///
    /// Concurrency and working-set figures come from a sweep over the
    /// start/end events of all records.
    pub fn from_records(records: &[TaskRecord], overhead: Duration) -> Self {
        if records.is_empty() {
            return Self::default();
        }
        let mut stats = Self {
            tasks: records.len(),
            min_task_time: f64::INFINITY,
            overhead_time: overhead.as_secs_f64(),
            ..Self::default()
        };
        let mut first = f64::INFINITY;
        let mut last = 0.0f64;
        for r in records {
            let d = r.duration();
            stats.total_task_time += d;
            stats.min_task_time = stats.min_task_time.min(d);
            stats.max_task_time = stats.max_task_time.max(d);
            first = first.min(r.start);
            last = last.max(r.end);
        }
        stats.makespan = (last - first).max(0.0);

        // Event sweep: +1 task / +ws at start, -1 / -ws at end.
        let mut events: Vec<(f64, i64, i64)> = Vec::with_capacity(records.len() * 2);
        for r in records {
            events.push((r.start, 1, r.working_set_bytes as i64));
            events.push((r.end, -1, -(r.working_set_bytes as i64)));
        }
        // Ends sort before starts at equal timestamps so instantaneous
        // handoffs do not double-count.
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut conc = 0i64;
        let mut ws = 0i64;
        let mut conc_integral = 0.0;
        let mut ws_integral = 0.0;
        let mut prev_t = events[0].0;
        for (t, dc, dw) in events {
            let dt = t - prev_t;
            conc_integral += conc as f64 * dt;
            ws_integral += ws as f64 * dt;
            conc += dc;
            ws += dw;
            stats.peak_concurrency = stats.peak_concurrency.max(conc as usize);
            stats.peak_working_set_bytes = stats.peak_working_set_bytes.max(ws.max(0) as usize);
            prev_t = t;
        }
        if stats.makespan > 0.0 {
            stats.avg_concurrency = conc_integral / stats.makespan;
            stats.avg_working_set_bytes = ws_integral / stats.makespan;
        } else {
            // Degenerate zero-length trace: report instantaneous values.
            stats.avg_concurrency = records.len() as f64;
            stats.avg_working_set_bytes = records.iter().map(|r| r.working_set_bytes as f64).sum();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, worker: usize, start: f64, end: f64, ws: usize) -> TaskRecord {
        TaskRecord {
            id,
            label: "t",
            tag: 0,
            worker,
            start,
            end,
            working_set_bytes: ws,
        }
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let s = RuntimeStats::from_records(&[], Duration::ZERO);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.avg_task_time(), 0.0);
        assert_eq!(s.overhead_ratio(), 0.0);
    }

    #[test]
    fn durations_and_makespan() {
        let recs = [rec(0, 0, 0.0, 1.0, 0), rec(1, 1, 0.5, 2.5, 0)];
        let s = RuntimeStats::from_records(&recs, Duration::from_millis(100));
        assert_eq!(s.tasks, 2);
        assert!((s.total_task_time - 3.0).abs() < 1e-12);
        assert!((s.min_task_time - 1.0).abs() < 1e-12);
        assert!((s.max_task_time - 2.0).abs() < 1e-12);
        assert!((s.makespan - 2.5).abs() < 1e-12);
        assert!((s.avg_task_time() - 1.5).abs() < 1e-12);
        assert!((s.overhead_time - 0.1).abs() < 1e-12);
    }

    #[test]
    fn concurrency_sweep() {
        // [0,1] and [0.5,2.5] overlap during [0.5,1.0].
        let recs = [rec(0, 0, 0.0, 1.0, 100), rec(1, 1, 0.5, 2.5, 200)];
        let s = RuntimeStats::from_records(&recs, Duration::ZERO);
        assert_eq!(s.peak_concurrency, 2);
        // integral = 1*0.5 + 2*0.5 + 1*1.5 = 3.0 over makespan 2.5.
        assert!((s.avg_concurrency - 1.2).abs() < 1e-9);
        assert_eq!(s.peak_working_set_bytes, 300);
    }

    #[test]
    fn sequential_handoff_does_not_double_count() {
        let recs = [rec(0, 0, 0.0, 1.0, 64), rec(1, 0, 1.0, 2.0, 64)];
        let s = RuntimeStats::from_records(&recs, Duration::ZERO);
        assert_eq!(s.peak_concurrency, 1);
        assert_eq!(s.peak_working_set_bytes, 64);
    }

    #[test]
    fn overhead_ratio_relative_to_work() {
        let recs = [rec(0, 0, 0.0, 10.0, 0)];
        let s = RuntimeStats::from_records(&recs, Duration::from_secs(1));
        assert!((s.overhead_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn record_duration() {
        assert!((rec(0, 0, 1.0, 3.5, 0).duration() - 2.5).abs() < 1e-12);
    }
}
