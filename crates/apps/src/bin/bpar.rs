//! `bpar` — command-line front end for the B-Par stack.
//!
//! ```text
//! bpar train-speech [--layers N] [--hidden N] [--epochs N] [--mbs N]
//!                   [--save PATH]                 train a BLSTM digit classifier
//! bpar train-chars  [--layers N] [--hidden N] [--steps N] [--cell lstm|gru]
//!                   [--save PATH]                 train a next-char model
//! bpar eval         --model PATH                  evaluate a checkpoint
//! bpar simulate     [--layers N] [--hidden N] [--batch N] [--seq N]
//!                   [--cores LIST] [--mbs N] [--barriers]
//!                                                 simulated multi-core batch times
//! bpar serve        [--rate R] [--requests N] [--window-us U] [--max-batch N]
//!                   [--policy block|reject|shed] [--mode open|closed] [--model PATH]
//!                   [--fault-panic-rate P] [--fault-straggle-rate P] [--fault-seed S]
//!                   [--retry-max N] [--retry-backoff-us U] [--counters-out PATH]
//!                   [--replicas N] [--routing hash|least-loaded]
//!                   [--hedge-mode off|at-dispatch|deadline] [--hedge-quantile Q]
//!                   [--tenants FILE] [--plan-budget-kib N] [--pool-budget-kib N]
//!                   [--backend scalar|simd|int8]
//!                   [--scheduler fifo|locality|work-stealing]
//!                   [--recurrence chain|scan|scan:N]
//!                                                 dynamic-batching inference serving
//!                                                 (optionally under injected faults;
//!                                                 --replicas > 1 runs the routed
//!                                                 multi-replica fleet tier)
//! bpar analyze      [--layers N] [--hidden N] [--seq N] [--batch N] [--mbs N]
//!                   [--cell lstm|gru|vanilla|linear] [--kind m2o|m2m] [--inference]
//!                   [--seed-bug [missing-clause|dropped-edge|cross-epoch-race]]
//!                   [--explore-max-tasks N] [--explore-max-schedules N]
//!                   [--scheduler fifo|locality|work-stealing]
//!                   [--recurrence chain|scan|scan:N]
//!                   [--format text|json] [--out PATH]
//!                                                 verify dependency clauses, graph
//!                                                 structure, happens-before races,
//!                                                 lock discipline and schedule
//!                                                 invariance; exit 1 on findings
//! ```
//!
//! Argument parsing is hand-rolled (no CLI-crate dependency); every
//! subcommand prints a compact report and exits non-zero on bad usage.

use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::prelude::*;
use bpar_core::scanplan::RecurrenceStrategy;
use bpar_core::train::{Batch, Trainer};
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use bpar_data::wikitext::{WikitextDataset, VOCAB_SIZE};
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "train-speech" => train_speech(&opts),
        "train-chars" => train_chars(&opts),
        "eval" => eval(&opts),
        "simulate" => simulate_cmd(&opts),
        "serve" => serve_cmd(&opts),
        "analyze" => analyze_cmd(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bpar — task-based bidirectional RNNs (B-Par reproduction)

USAGE:
  bpar train-speech [--layers N] [--hidden N] [--epochs N] [--mbs N] [--save PATH]
  bpar train-chars  [--layers N] [--hidden N] [--steps N] [--cell lstm|gru|vanilla] [--save PATH]
  bpar eval         --model PATH
  bpar simulate     [--layers N] [--hidden N] [--batch N] [--seq N]
                    [--cores a,b,c] [--mbs N] [--barriers]
  bpar serve        [--rate R] [--requests N] [--window-us U] [--max-batch N]
                    [--bucket-width N] [--queue-cap N] [--policy block|reject|shed]
                    [--mode open|closed] [--deadline-ms D] [--workers N] [--seed S]
                    [--layers N] [--hidden N] [--model PATH]
                    [--fault-seed S] [--fault-panic-rate P] [--fault-straggle-rate P]
                    [--fault-straggle-us U] [--fault-panic-budget N]
                    [--retry-max N] [--retry-backoff-us U] [--counters-out PATH]
                    [--replicas N] [--routing hash|least-loaded]
                    [--hedge-mode off|at-dispatch|deadline] [--hedge-quantile Q]
                    [--tenants FILE] [--plan-budget-kib N] [--pool-budget-kib N]
                    [--backend scalar|simd|int8]
                    [--scheduler fifo|locality|work-stealing]
                    [--recurrence chain|scan|scan:N]
  bpar analyze      [--layers N] [--hidden N] [--seq N] [--batch N] [--mbs N]
                    [--cell lstm|gru|vanilla|linear] [--kind m2o|m2m] [--inference]
                    [--fuzz-seeds a,b,c] [--scheduler fifo|locality|work-stealing]
                    [--seed-bug [missing-clause|dropped-edge|cross-epoch-race]]
                    [--explore-max-tasks N] [--explore-max-schedules N]
                    [--recurrence chain|scan|scan:N]
                    [--format text|json] [--out PATH]";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // Boolean flags take no value.
        if matches!(name, "barriers" | "inference") {
            out.insert(name.into(), "true".into());
            continue;
        }
        // `--seed-bug` takes an optional bug name; bare means the
        // original missing-clause fixture.
        if name == "seed-bug" {
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "missing-clause".into(),
            };
            out.insert(name.into(), value);
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.insert(name.into(), value.clone());
    }
    Ok(out)
}

fn get_usize(opts: &Flags, name: &str, default: usize) -> Result<usize, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
    }
}

fn get_f64(opts: &Flags, name: &str, default: f64) -> Result<f64, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn get_scheduler(opts: &Flags, default: SchedulerPolicy) -> Result<SchedulerPolicy, String> {
    match opts.get("scheduler") {
        None => Ok(default),
        Some(name) => SchedulerPolicy::parse(name).ok_or_else(|| {
            format!("--scheduler expects fifo|locality|work-stealing, got `{name}`")
        }),
    }
}

fn get_cell(opts: &Flags) -> Result<CellKind, String> {
    match opts.get("cell").map(String::as_str) {
        None | Some("lstm") => Ok(CellKind::Lstm),
        Some("gru") => Ok(CellKind::Gru),
        Some("vanilla") => Ok(CellKind::Vanilla),
        Some("linear") => Ok(CellKind::Linear),
        Some(other) => Err(format!("unknown cell `{other}`")),
    }
}

fn get_recurrence(opts: &Flags) -> Result<RecurrenceStrategy, String> {
    match opts.get("recurrence") {
        None => Ok(RecurrenceStrategy::Chain),
        Some(name) => RecurrenceStrategy::parse(name)
            .ok_or_else(|| format!("--recurrence expects chain|scan|scan:N, got `{name}`")),
    }
}

fn train_speech(opts: &Flags) -> Result<(), String> {
    let config = BrnnConfig {
        cell: get_cell(opts)?,
        input_size: 20,
        hidden_size: get_usize(opts, "hidden", 32)?,
        layers: get_usize(opts, "layers", 2)?,
        seq_len: 14,
        output_size: DIGIT_CLASSES,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let epochs = get_usize(opts, "epochs", 4)?;
    let mbs = get_usize(opts, "mbs", 2)?;
    let data = TidigitsDataset::new(config.input_size, 11, 2024);
    let train: Vec<Batch<f32>> = (0..30u64)
        .map(|i| {
            let (xs, labels) = data.batch(i * 16, 16, config.seq_len);
            Batch {
                xs,
                target: Target::Classes(labels),
            }
        })
        .collect();
    let eval_batch: Vec<Batch<f32>> = vec![{
        let (xs, labels) = data.batch(1_000_000, 128, config.seq_len);
        Batch {
            xs,
            target: Target::Classes(labels),
        }
    }];

    let exec = TaskGraphExec::with_config(0, SchedulerPolicy::LocalityAware, mbs);
    let mut model: Brnn<f32> = Brnn::new(config, 1);
    let mut trainer = Trainer::new(&exec, Box::new(Momentum::new(0.05, 0.9)));
    println!(
        "training {}-layer BLSTM digit classifier ({} params, mbs:{mbs}, {} workers)",
        config.layers,
        config.total_param_count(),
        exec.runtime().workers()
    );
    for epoch in 0..epochs {
        let stats = trainer.train_epoch(&mut model, &train);
        let acc = trainer.evaluate(&model, &eval_batch);
        println!(
            "epoch {epoch}: loss {:.4}, accuracy {:.1}%, {:.1} ms/batch",
            stats.final_loss(),
            acc * 100.0,
            stats.mean_batch_ms()
        );
    }
    maybe_save(opts, &model)
}

fn train_chars(opts: &Flags) -> Result<(), String> {
    let config = BrnnConfig {
        cell: get_cell(opts)?,
        input_size: VOCAB_SIZE,
        hidden_size: get_usize(opts, "hidden", 48)?,
        layers: get_usize(opts, "layers", 2)?,
        seq_len: 24,
        output_size: VOCAB_SIZE,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToMany,
    };
    let steps = get_usize(opts, "steps", 40)?;
    let data = WikitextDataset::new(2024);
    let exec = TaskGraphExec::new(0);
    let mut model: Brnn<f32> = Brnn::new(config, 1);
    let mut opt = Adam::new(0.01);
    println!(
        "training {}-layer {:?} next-char model ({} params)",
        config.layers,
        config.cell,
        config.total_param_count()
    );
    for step in 0..steps as u64 {
        let (xs, targets) = data.batch::<f32>(step * 32, 32, config.seq_len);
        let loss = exec.train_batch(&mut model, &xs, &Target::SeqClasses(targets), &mut opt);
        if step % 10 == 0 || step + 1 == steps as u64 {
            println!(
                "step {step}: loss {loss:.3}, perplexity {:.1}",
                bpar_core::loss::perplexity(loss)
            );
        }
    }
    maybe_save(opts, &model)
}

fn maybe_save(opts: &Flags, model: &Brnn<f32>) -> Result<(), String> {
    if let Some(path) = opts.get("save") {
        bpar_core::io::save_file(model, path).map_err(|e| e.to_string())?;
        println!("saved checkpoint to {path}");
    }
    Ok(())
}

fn eval(opts: &Flags) -> Result<(), String> {
    let path = opts.get("model").ok_or("--model PATH is required")?;
    let model: Brnn<f32> = bpar_core::io::load_file(path).map_err(|e| e.to_string())?;
    let cfg = model.config;
    println!(
        "loaded {:?} model: {} layers, hidden {}, {} params, {:?}",
        cfg.cell,
        cfg.layers,
        cfg.hidden_size,
        model.param_count(),
        cfg.kind
    );
    let exec = TaskGraphExec::new(0);
    match cfg.kind {
        ModelKind::ManyToOne => {
            let data = TidigitsDataset::new(cfg.input_size, 11, 2024);
            let (xs, labels) = data.batch::<f32>(1_000_000, 128, cfg.seq_len);
            let out = exec.forward(&model, &xs);
            let acc = bpar_core::loss::accuracy(&out.logits, &labels);
            println!("held-out digit accuracy: {:.1}%", acc * 100.0);
        }
        ModelKind::ManyToMany => {
            let data = WikitextDataset::new(2024);
            let (xs, targets) = data.batch::<f32>(1_000_000, 32, cfg.seq_len);
            let out = exec.forward(&model, &xs);
            let mut loss = 0.0;
            for (t, classes) in targets.iter().enumerate() {
                let (l, _) = bpar_core::loss::softmax_cross_entropy(&out.seq_logits[t], classes);
                loss += l / targets.len() as f64;
            }
            println!(
                "held-out perplexity: {:.2}",
                bpar_core::loss::perplexity(loss)
            );
        }
    }
    Ok(())
}

fn simulate_cmd(opts: &Flags) -> Result<(), String> {
    let config = BrnnConfig {
        cell: get_cell(opts)?,
        input_size: 256,
        hidden_size: get_usize(opts, "hidden", 256)?,
        layers: get_usize(opts, "layers", 6)?,
        seq_len: get_usize(opts, "seq", 100)?,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let batch = get_usize(opts, "batch", 128)?;
    let mbs = get_usize(opts, "mbs", 8)?;
    let barriers = opts.contains_key("barriers");
    let cores: Vec<usize> = match opts.get("cores") {
        None => vec![1, 8, 24, 48],
        Some(list) => list
            .split(',')
            .map(|c| {
                c.trim()
                    .parse()
                    .map_err(|_| format!("bad core count `{c}`"))
            })
            .collect::<Result<_, _>>()?,
    };

    let spec = GraphSpec::training(config, batch)
        .with_mbs(mbs)
        .with_barriers(barriers);
    let graph = build_graph(&spec);
    println!(
        "simulating {} tasks ({}-layer {:?}, batch {batch}, mbs:{mbs}{}) on a 48-core Xeon model",
        graph.len(),
        config.layers,
        config.cell,
        if barriers { ", per-layer barriers" } else { "" }
    );
    println!("cores  batch-time(s)  speedup  avg-tasks-in-flight");
    let mut first = None;
    for &c in &cores {
        if c == 0 || c > 48 {
            return Err(format!("core count {c} outside 1..=48"));
        }
        let r = simulate(&graph, &SimConfig::xeon(c));
        let base = *first.get_or_insert(r.makespan);
        println!(
            "{c:>5}  {:>13.3}  {:>6.2}x  {:>18.1}",
            r.makespan,
            base / r.makespan,
            r.avg_concurrency()
        );
    }
    Ok(())
}

fn analyze_cmd(opts: &Flags) -> Result<(), String> {
    use bpar_core::analyze::{analyze, AnalyzeOptions, SeedBug};

    let kind = match opts.get("kind").map(String::as_str) {
        None | Some("m2o") => ModelKind::ManyToOne,
        Some("m2m") => ModelKind::ManyToMany,
        Some(other) => return Err(format!("--kind expects m2o|m2m, got `{other}`")),
    };
    let fuzz_seeds: Vec<u64> = match opts.get("fuzz-seeds") {
        None => vec![42, 1337],
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad seed `{s}`")))
            .collect::<Result<_, _>>()?,
    };
    let seed_bug = match opts.get("seed-bug").map(String::as_str) {
        None => None,
        Some("missing-clause") => Some(SeedBug::MissingClause),
        Some("dropped-edge") => Some(SeedBug::DroppedEdge),
        Some("cross-epoch-race") => Some(SeedBug::CrossEpochRace),
        Some(other) => {
            return Err(format!(
                "--seed-bug expects missing-clause|dropped-edge|cross-epoch-race, got `{other}`"
            ))
        }
    };
    let format = opts.get("format").map(String::as_str).unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format expects text|json, got `{format}`"));
    }
    let defaults = AnalyzeOptions::default();
    let analyze_opts = AnalyzeOptions {
        config: BrnnConfig {
            cell: get_cell(opts)?,
            input_size: 8,
            hidden_size: get_usize(opts, "hidden", 8)?,
            layers: get_usize(opts, "layers", 3)?,
            seq_len: get_usize(opts, "seq", 3)?,
            output_size: 4,
            merge: MergeMode::Sum,
            kind,
        },
        rows: get_usize(opts, "batch", 4)?,
        mbs: get_usize(opts, "mbs", 1)?,
        train: !opts.contains_key("inference"),
        seed_bug,
        fuzz_seeds,
        model_seed: get_usize(opts, "seed", 7)? as u64,
        explore_max_tasks: get_usize(opts, "explore-max-tasks", defaults.explore_max_tasks)?,
        explore_max_schedules: get_usize(
            opts,
            "explore-max-schedules",
            defaults.explore_max_schedules,
        )?,
        scheduler: get_scheduler(opts, defaults.scheduler)?,
        recurrence: get_recurrence(opts)?,
        ..defaults
    };

    let report = analyze(&analyze_opts);
    let json = report.to_json();
    let default_out = "results/analyze.json".to_string();
    let out = opts.get("out").unwrap_or(&default_out);
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;

    if format == "json" {
        // Machine mode: the byte-deterministic report itself, nothing
        // else, so CI can `cmp` two same-seed runs.
        println!("{json}");
    } else {
        for g in &report.graphs {
            println!(
                "{:<18} {:>5} tasks {:>5} edges {:>3} findings",
                g.name,
                g.metrics.tasks,
                g.metrics.edges,
                g.findings.len()
            );
            for f in &g.findings {
                let task = f
                    .task
                    .map(|t| format!(" task {t} ({})", f.label))
                    .unwrap_or_default();
                let region = f
                    .region
                    .as_deref()
                    .map(|r| format!(" region {r}"))
                    .unwrap_or_default();
                println!("  [{} {}]{task}{region}: {}", f.code, f.check, f.detail);
            }
        }
        println!("[written {out}]");
    }
    if report.errors > 0 {
        return Err(format!(
            "{} gating finding(s) — the dependency clauses or graph structure are unsound",
            report.errors
        ));
    }
    if format == "text" {
        println!("clean: every prong passed (clauses sound, schedules bit-identical)");
    }
    Ok(())
}

fn serve_cmd(opts: &Flags) -> Result<(), String> {
    use bpar_runtime::FaultConfig;
    use bpar_serve::{
        run_closed_loop, run_open_loop, BackpressurePolicy, BatchPolicy, ClosedLoopConfig,
        OpenLoopConfig, RetryPolicy, ServeConfig,
    };
    use std::time::Duration;

    let model: Brnn<f32> = match opts.get("model") {
        Some(path) => bpar_core::io::load_file(path).map_err(|e| e.to_string())?,
        None => Brnn::new(
            BrnnConfig {
                cell: get_cell(opts)?,
                input_size: 20,
                hidden_size: get_usize(opts, "hidden", 32)?,
                layers: get_usize(opts, "layers", 2)?,
                seq_len: 14,
                output_size: DIGIT_CLASSES,
                merge: MergeMode::Sum,
                kind: ModelKind::ManyToOne,
            },
            1,
        ),
    };
    let policy = {
        let name = opts.get("policy").map(String::as_str).unwrap_or("block");
        BackpressurePolicy::parse(name)
            .ok_or_else(|| format!("--policy expects block|reject|shed, got `{name}`"))?
    };
    let retry = {
        let max_retries = get_usize(opts, "retry-max", 2)? as u32;
        let backoff_us = get_usize(opts, "retry-backoff-us", 200)? as u64;
        if backoff_us == 0 {
            // Zero backoff also zeroes the jitter — the determinism knob
            // for the chaos CI job.
            RetryPolicy::immediate(max_retries)
        } else {
            RetryPolicy {
                max_retries,
                backoff_base: Duration::from_micros(backoff_us),
                ..RetryPolicy::default()
            }
        }
    };
    let budget_kib = |name: &str| -> Result<Option<u64>, String> {
        match opts.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(|kib| Some(kib * 1024))
                .map_err(|_| format!("--{name} expects an integer KiB count, got `{v}`")),
        }
    };
    let backend = {
        let name = opts.get("backend").map(String::as_str).unwrap_or("scalar");
        bpar_tensor::BackendKind::parse(name)
            .ok_or_else(|| format!("--backend expects scalar|simd|int8, got `{name}`"))?
    };
    let cfg = ServeConfig {
        queue_capacity: get_usize(opts, "queue-cap", 64)?,
        policy,
        batch: BatchPolicy::new(
            get_usize(opts, "max-batch", 8)?,
            Duration::from_micros(get_usize(opts, "window-us", 2000)? as u64),
        )
        .with_bucket_width(get_usize(opts, "bucket-width", 1)?),
        workers: get_usize(opts, "workers", 0)?,
        scheduler: get_scheduler(opts, SchedulerPolicy::LocalityAware)?,
        retry,
        plan_byte_budget: budget_kib("plan-budget-kib")?,
        pool_byte_budget: budget_kib("pool-budget-kib")?,
        backend,
        recurrence: get_recurrence(opts)?,
        ..ServeConfig::default()
    };
    let seed = get_usize(opts, "seed", 42)? as u64;
    let fault = {
        let panic_rate = get_f64(opts, "fault-panic-rate", 0.0)?;
        let straggle_rate = get_f64(opts, "fault-straggle-rate", 0.0)?;
        if panic_rate > 0.0 || straggle_rate > 0.0 {
            Some(FaultConfig {
                seed: get_usize(opts, "fault-seed", seed as usize)? as u64,
                panic_rate,
                straggle_rate,
                straggle: Duration::from_micros(get_usize(opts, "fault-straggle-us", 200)? as u64),
                panic_budget: match opts.get("fault-panic-budget") {
                    None => u64::MAX,
                    Some(v) => v.parse().map_err(|_| {
                        format!("--fault-panic-budget expects an integer, got `{v}`")
                    })?,
                },
            })
        } else {
            None
        }
    };
    if fault.is_some() {
        // Injected panics are expected, high-volume events; keep the
        // default hook's per-panic stderr spew for *organic* panics only.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|msg| msg.contains("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    }
    let requests = get_usize(opts, "requests", 200)? as u64;
    let deadline = match opts.get("deadline-ms") {
        None => None,
        Some(v) => {
            let ms: f64 = v
                .parse()
                .map_err(|_| format!("--deadline-ms expects a number, got `{v}`"))?;
            Some(Duration::from_secs_f64(ms / 1e3))
        }
    };
    let mode = opts.get("mode").map(String::as_str).unwrap_or("open");
    if !matches!(mode, "open" | "closed") {
        return Err(format!("--mode expects open|closed, got `{mode}`"));
    }
    let replicas = get_usize(opts, "replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    // Any fleet-tier flag routes through the router, even with one
    // replica, so tenant files and hedging knobs behave uniformly.
    if replicas > 1
        || opts.contains_key("tenants")
        || opts.contains_key("routing")
        || opts.contains_key("hedge-mode")
        || opts.contains_key("hedge-quantile")
    {
        return serve_fleet(
            opts, model, cfg, fault, seed, requests, deadline, mode, replicas,
        );
    }
    println!(
        "serving {requests} requests ({mode} loop) through a {}-layer {:?} model: \
         window {}us, max batch {}, bucket width {}, policy {}, queue cap {}",
        model.config.layers,
        model.config.cell,
        cfg.batch.window.as_micros(),
        cfg.batch.max_batch,
        cfg.batch.bucket_width,
        cfg.policy.name(),
        cfg.queue_capacity,
    );
    let report = match mode {
        "open" => run_open_loop(
            model,
            cfg,
            OpenLoopConfig {
                seed,
                rate_rps: get_f64(opts, "rate", 200.0)?,
                requests,
                mean_frames: 11,
                deadline,
                fault,
            },
        ),
        "closed" => run_closed_loop(
            model,
            cfg,
            ClosedLoopConfig {
                seed,
                requests,
                mean_frames: 11,
                deadline,
                fault,
            },
        ),
        other => return Err(format!("--mode expects open|closed, got `{other}`")),
    };
    println!(
        "outcome: {} served, {} shed, {} rejected, {} failed in {:.2}s ({:.1} served/s)",
        report.served,
        report.shed,
        report.rejected,
        report.failed,
        report.duration_s,
        report.throughput_rps
    );
    println!(
        "latency (ms): p50 {:.2}  p95 {:.2}  p99 {:.2}  p99.9 {:.2}  max {:.2}",
        report.latency.p50_us as f64 / 1e3,
        report.latency.p95_us as f64 / 1e3,
        report.latency.p99_us as f64 / 1e3,
        report.latency.p999_us as f64 / 1e3,
        report.latency.max_us as f64 / 1e3,
    );
    println!(
        "batches: {} ({:.1} rows mean, {:.0}% fill, {:.1}% padding); queue depth mean {:.1} max {}",
        report.batches,
        report.batch_rows_mean,
        report.batch_fill_mean * 100.0,
        report.padding_frac * 100.0,
        report.queue_depth_mean,
        report.queue_depth_max,
    );
    println!(
        "plan cache: {} hits, {} misses, {} evictions; {} weight deep copies; \
         arena {:.1} KiB resident, {} warm reuses",
        report.plan_hits,
        report.plan_misses,
        report.plan_evictions,
        report.weight_syncs,
        report.arena_bytes as f64 / 1024.0,
        report.arena_reuses,
    );
    println!(
        "batch buffers: {} pool hits, {} misses ({:.1} KiB pooled) — \
         steady-state batches allocate nothing",
        report.pool_hits,
        report.pool_misses,
        report.pool_bytes as f64 / 1024.0,
    );
    if fault.is_some() || report.retries > 0 {
        println!(
            "recovery: {} retries ({} poison-isolated, {} budget-exhausted); \
             breaker opened {} / closed {}; injected {} panics, {} stragglers",
            report.retries,
            report.poison_isolated,
            report.retry_exhausted,
            report.breaker_opened,
            report.breaker_closed,
            report.injected_panics,
            report.injected_straggles,
        );
    }
    if let Some(path) = opts.get("counters-out") {
        // Deterministic counters only (no latencies or wall times), so a
        // CI job can diff two same-seed runs byte for byte.
        let json = format!(
            "{{\n  \"submitted\": {},\n  \"served\": {},\n  \"shed\": {},\n  \
             \"rejected\": {},\n  \"failed\": {},\n  \"retries\": {},\n  \
             \"poison_isolated\": {},\n  \"retry_exhausted\": {},\n  \
             \"breaker_opened\": {},\n  \"breaker_closed\": {},\n  \
             \"injected_panics\": {},\n  \"injected_straggles\": {}\n}}\n",
            report.submitted,
            report.served,
            report.shed,
            report.rejected,
            report.failed,
            report.retries,
            report.poison_isolated,
            report.retry_exhausted,
            report.breaker_opened,
            report.breaker_closed,
            report.injected_panics,
            report.injected_straggles,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("[written {path}]");
    }
    // Conservation: every submitted request must have exactly one
    // terminal outcome. A mismatch means the serving loop lost or
    // duplicated work — fail loudly so CI catches it.
    let accounted = report.served + report.shed + report.rejected + report.failed;
    if accounted != report.submitted {
        return Err(format!(
            "request conservation violated: {} submitted but {} accounted \
             ({} served + {} shed + {} rejected + {} failed)",
            report.submitted, accounted, report.served, report.shed, report.rejected, report.failed,
        ));
    }
    Ok(())
}

/// The routed multi-replica path of `bpar serve`: N thread-owned server
/// replicas behind `bpar_router::Router`, with optional per-tenant
/// models, hedged dispatch, and a deterministic fleet counter dump for
/// the chaos CI job.
#[allow(clippy::too_many_arguments)]
fn serve_fleet(
    opts: &Flags,
    model: Brnn<f32>,
    cfg: bpar_serve::ServeConfig,
    fault: Option<bpar_runtime::FaultConfig>,
    seed: u64,
    requests: u64,
    deadline: Option<std::time::Duration>,
    mode: &str,
    replicas: usize,
) -> Result<(), String> {
    use bpar_router::{
        build_models, parse_tenants, HedgePolicy, Router, RouterConfig, RoutingPolicy,
    };
    use bpar_serve::{InferRequest, MetricsCollector};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    let routing = {
        let name = opts.get("routing").map(String::as_str).unwrap_or("hash");
        RoutingPolicy::parse(name)
            .ok_or_else(|| format!("--routing expects hash|least-loaded, got `{name}`"))?
    };
    let hedge = match opts.get("hedge-mode").map(String::as_str) {
        Some("off") => HedgePolicy::Off,
        Some("at-dispatch") => HedgePolicy::AtDispatch,
        Some("deadline") => HedgePolicy::deadline(get_f64(opts, "hedge-quantile", 0.95)?),
        // A bare --hedge-quantile implies deadline mode.
        None if opts.contains_key("hedge-quantile") => {
            HedgePolicy::deadline(get_f64(opts, "hedge-quantile", 0.95)?)
        }
        None => HedgePolicy::Off,
        Some(other) => {
            return Err(format!(
                "--hedge-mode expects off|at-dispatch|deadline, got `{other}`"
            ))
        }
    };
    let models = match opts.get("tenants") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            build_models::<f32>(model.config, &parse_tenants(&text)?)
        }
        None => vec![model],
    };
    let tenants = models.len() as u64;
    let input_size = models[0].config.input_size;
    let max_batch = cfg.batch.max_batch;
    let closed = mode == "closed";
    println!(
        "routing {requests} requests ({mode} loop) across {replicas} replicas, {tenants} \
         tenant(s): routing {}, hedging {}, window {}us, max batch {}, policy {}, queue cap {}",
        routing.name(),
        hedge.name(),
        cfg.batch.window.as_micros(),
        max_batch,
        cfg.policy.name(),
        cfg.queue_capacity,
    );
    let config = RouterConfig {
        replicas,
        routing,
        hedge,
        serve: cfg,
        fault,
        // Closed mode pre-enqueues the whole workload behind a paused
        // start gate — the determinism recipe the chaos CI job relies on.
        start_paused: closed,
    };
    let metrics = Arc::new(Mutex::new(MetricsCollector::new()));
    let sink = Arc::clone(&metrics);
    let start = Instant::now();
    let router = Router::new(models, config, move |outcome| {
        sink.lock()
            .expect("metrics poisoned")
            .record_outcome(&outcome)
    });
    let data = TidigitsDataset::new(input_size, 11, seed);
    let rate = get_f64(opts, "rate", 200.0)?;
    if !closed && rate <= 0.0 {
        return Err("open loop needs a positive --rate".into());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next = Instant::now();
    for id in 0..requests {
        if !closed {
            // Same seeded Poisson arrival process as the single-server
            // open loop.
            let u: f64 = rng.gen_range(0.0..1.0);
            next += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            if let Some(wait) = next.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let utt = data.utterance::<f32>(id);
        let mut req = InferRequest::new(id, utt.frames);
        req.deadline = deadline;
        req.tenant = (id % tenants) as u32;
        router.submit(req);
    }
    router.release();
    let report = router.finish();
    let elapsed = start.elapsed();
    let fleet = Arc::try_unwrap(metrics)
        .map_err(|_| "fleet metrics still shared after router teardown".to_string())?
        .into_inner()
        .expect("metrics poisoned")
        .finish(max_batch, elapsed);
    println!(
        "fleet outcome: {} served, {} shed, {} rejected, {} failed in {:.2}s ({:.1} served/s)",
        report.served,
        report.shed,
        report.rejected,
        report.failed,
        elapsed.as_secs_f64(),
        report.served as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "latency (ms): p50 {:.2}  p95 {:.2}  p99 {:.2}  p99.9 {:.2}  max {:.2}",
        fleet.latency.p50_us as f64 / 1e3,
        fleet.latency.p95_us as f64 / 1e3,
        fleet.latency.p99_us as f64 / 1e3,
        fleet.latency.p999_us as f64 / 1e3,
        fleet.latency.max_us as f64 / 1e3,
    );
    println!(
        "hedging: {} hedge copies, {} wins on the hedge shard, {} copies cancelled, \
         {} late copy events",
        report.hedges, report.hedge_wins, report.cancelled_copies, report.late_events,
    );
    for sh in &report.shards {
        println!(
            "  shard {}: {} routed + {} hedged; {} served, {} failed, {} retries; \
             breaker {}; {} panics / {} straggles injected; queue depth p99 {}; \
             {} tenant evictions",
            sh.shard,
            sh.routed,
            sh.hedged,
            sh.serving.served,
            sh.serving.failed,
            sh.serving.retries,
            sh.breaker_state,
            sh.serving.injected_panics,
            sh.serving.injected_straggles,
            sh.serving.queue_depth.p99_us,
            sh.serving.tenant_evictions,
        );
    }
    if let Some(path) = opts.get("counters-out") {
        std::fs::write(path, report.deterministic_counters_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("[written {path}]");
    }
    // Fleet conservation: the router must deliver exactly one terminal
    // outcome per submitted request, whatever the copies did.
    let accounted = report.served + report.shed + report.rejected + report.failed;
    if report.completed != report.submitted || accounted != report.submitted {
        return Err(format!(
            "fleet conservation violated: {} submitted, {} completed, {} accounted \
             ({} served + {} shed + {} rejected + {} failed)",
            report.submitted,
            report.completed,
            accounted,
            report.served,
            report.shed,
            report.rejected,
            report.failed,
        ));
    }
    Ok(())
}
