//! # bpar-apps
//!
//! Umbrella crate hosting the workspace's runnable examples
//! (`examples/` at the repository root) and the cross-crate integration
//! tests (`tests/` at the repository root). It re-exports the public
//! surface of the B-Par stack so examples can use one import.

pub use bpar_baselines as baselines;
pub use bpar_core as core;
pub use bpar_data as data;
pub use bpar_runtime as runtime;
pub use bpar_sim as sim;
pub use bpar_tensor as tensor;
