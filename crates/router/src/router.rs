//! The router: N thread-owned serving replicas behind one submit path.
//!
//! ```text
//!                        ┌──────────────┐   serve loop (own thread,
//!              ┌───────► │ shard 0      │   own Runtime + worker pool)
//!   submit ────┤  route  │  queue→batch │──► complete(0, outcome) ─┐
//!   (+ hedge)  │         └──────────────┘                          │
//!              │         ┌──────────────┐                          ▼
//!              └───────► │ shard 1 …    │──► complete(1, …) ──► claim /
//!                        └──────────────┘        merge → client terminal
//! ```
//!
//! Every request gets a shared [`CancelCell`]; copies of a hedged
//! request race for its claim, and **exactly one** client-terminal
//! outcome is delivered per request no matter how many copies ran,
//! failed, or were cancelled. The conservation proptests in
//! `tests/hedge_conservation.rs` drive this property across routing
//! policies, hedge modes, and fault plans.

use crate::hedge::{HedgePolicy, LatencyWindow};
use crate::policy::{RoutingPolicy, ShardProbe};
use crate::report::{RouterReport, ShardReport};
use bpar_core::model::Brnn;
use bpar_runtime::{CancelCell, FaultConfig};
use bpar_serve::{
    finish_report, Admission, AdmissionQueue, BreakerSnapshot, InferRequest, MetricsCollector,
    Outcome, ServeConfig, Server, ServingReport,
};
use bpar_tensor::Float;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of serving replicas (each with its own runtime and pool).
    pub replicas: usize,
    /// Primary/hedge placement policy.
    pub routing: RoutingPolicy,
    /// Hedged-dispatch policy. Forced to [`HedgePolicy::Off`] when
    /// `replicas == 1` — hedging onto the only shard buys nothing.
    pub hedge: HedgePolicy,
    /// Per-shard serving configuration. `cancel_sheds_work` is
    /// overridden from the hedge policy
    /// (see [`HedgePolicy::cancel_sheds_work`]).
    pub serve: ServeConfig,
    /// Optional chaos plan; shard `i` gets `seed + i` so replicas fail
    /// independently but reproducibly.
    pub fault: Option<FaultConfig>,
    /// When true, shard serve loops block until [`Router::release`] (or
    /// `finish`) — lets deterministic tests pre-enqueue the whole load.
    pub start_paused: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            routing: RoutingPolicy::Hash,
            hedge: HedgePolicy::Off,
            serve: ServeConfig::default(),
            fault: None,
            start_paused: false,
        }
    }
}

/// Copy-level failure kinds, ordered by merge precedence (a request
/// whose copies failed in different ways reports the highest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FailureKind {
    Rejected,
    Shed,
    Failed,
}

/// Book-keeping for a request with no client-terminal outcome yet.
struct Inflight<T: Float> {
    /// Clone held for deadline hedging (the copy to dispatch late).
    req: InferRequest<T>,
    cell: Arc<CancelCell>,
    primary: usize,
    hedge_shard: usize,
    dispatched: Instant,
    hedged: bool,
    /// Highest-precedence failure observed among finished copies.
    failure: Option<FailureKind>,
}

struct ShardState<T: Float> {
    queue: Arc<AdmissionQueue<T>>,
    breaker: Arc<AtomicU8>,
    routed: AtomicU64,
    hedged: AtomicU64,
}

struct RouterInner<T: Float> {
    shards: Vec<ShardState<T>>,
    routing: RoutingPolicy,
    hedge: HedgePolicy,
    inflight: Mutex<HashMap<u64, Inflight<T>>>,
    latency: Mutex<LatencyWindow>,
    on_terminal: Mutex<Box<dyn FnMut(Outcome<T>) + Send>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    served: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    cancelled_copies: AtomicU64,
    late_events: AtomicU64,
    monitor_stop: AtomicBool,
    started: Mutex<bool>,
    start_cv: Condvar,
}

impl<T: Float> RouterInner<T> {
    fn wait_start(&self) {
        let mut started = self.started.lock();
        while !*started {
            self.start_cv.wait(&mut started);
        }
    }

    fn release(&self) {
        let mut started = self.started.lock();
        *started = true;
        self.start_cv.notify_all();
    }

    fn probes(&self) -> Vec<ShardProbe> {
        self.shards
            .iter()
            .map(|s| ShardProbe {
                depth: s.queue.depth(),
                breaker: BreakerSnapshot::from_u8(s.breaker.load(Ordering::Relaxed)),
            })
            .collect()
    }

    fn deliver(&self, outcome: Outcome<T>) {
        match &outcome {
            Outcome::Served(_) => self.served.fetch_add(1, Ordering::Relaxed),
            Outcome::Failed { .. } => self.failed.fetch_add(1, Ordering::Relaxed),
            Outcome::Shed { .. } => self.shed.fetch_add(1, Ordering::Relaxed),
            Outcome::Rejected { .. } => self.rejected.fetch_add(1, Ordering::Relaxed),
            Outcome::Cancelled { .. } => unreachable!("Cancelled is copy-level, never terminal"),
        };
        self.completed.fetch_add(1, Ordering::Relaxed);
        (self.on_terminal.lock())(outcome);
    }

    /// Records one finished (non-served) copy of request `id`. If it was
    /// the last outstanding copy, claims the cell and delivers the
    /// merged failure as the client-terminal outcome.
    fn copy_finished(&self, id: u64, failure: Option<FailureKind>) {
        let mut inflight = self.inflight.lock();
        let Some(entry) = inflight.get_mut(&id) else {
            // The request already has a client-terminal outcome (its
            // other copy won); this event is the loser reporting in.
            self.late_events.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if let Some(kind) = failure {
            entry.failure = Some(entry.failure.map_or(kind, |prev| prev.max(kind)));
        }
        if entry.cell.finish_copy() == 0 {
            // Every copy failed or was cancelled without anyone serving:
            // claim (nobody else can now) and deliver the merged kind.
            let entry = inflight.remove(&id).expect("entry present");
            drop(inflight);
            let claimed = entry.cell.try_claim();
            debug_assert!(claimed, "no copy served, so the claim must be free");
            let kind = entry.failure.unwrap_or(FailureKind::Failed);
            self.deliver(match kind {
                FailureKind::Failed => Outcome::Failed { id },
                FailureKind::Shed => Outcome::Shed { id },
                FailureKind::Rejected => Outcome::Rejected { id },
            });
        }
    }

    /// Outcome sink for shard `ix`'s serve loop.
    fn complete(&self, ix: usize, outcome: Outcome<T>) {
        match outcome {
            Outcome::Served(resp) => {
                let id = resp.id;
                let entry = self.inflight.lock().remove(&id);
                match entry {
                    Some(entry) => {
                        if ix != entry.primary {
                            self.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        }
                        self.latency
                            .lock()
                            .record(resp.timing.total.as_micros() as u64);
                        self.deliver(Outcome::Served(resp));
                    }
                    None => {
                        // Should be impossible: serving requires winning
                        // the claim, and the claim is only free while the
                        // entry exists. Count rather than panic in a
                        // shard thread.
                        self.late_events.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Outcome::Cancelled { id } => {
                self.cancelled_copies.fetch_add(1, Ordering::Relaxed);
                self.copy_finished(id, None);
            }
            Outcome::Failed { id } => self.copy_finished(id, Some(FailureKind::Failed)),
            Outcome::Shed { id } => self.copy_finished(id, Some(FailureKind::Shed)),
            Outcome::Rejected { id } => self.copy_finished(id, Some(FailureKind::Rejected)),
        }
    }

    /// Pushes one copy to a shard, converting an admission refusal into
    /// the equivalent copy-level event (plus any expired occupants the
    /// admission evicted).
    fn push_copy(&self, shard: usize, req: InferRequest<T>) {
        let id = req.id;
        match self.shards[shard].queue.push(req) {
            Admission::Admitted { shed } => {
                for victim in shed {
                    self.copy_finished(victim.id, Some(FailureKind::Shed));
                }
            }
            Admission::Rejected(_) => self.copy_finished(id, Some(FailureKind::Rejected)),
            Admission::Shed(_) => self.copy_finished(id, Some(FailureKind::Shed)),
        }
    }

    /// One scan of the deadline-hedge monitor: dispatch hedge copies for
    /// requests outstanding past the quantile deadline.
    fn hedge_scan(&self, quantile: f64, min_samples: usize, floor: Duration) {
        let deadline = {
            let window = self.latency.lock();
            if window.len() >= min_samples {
                window
                    .quantile(quantile)
                    .map(|us| Duration::from_micros(us).max(floor))
                    .unwrap_or(floor)
            } else {
                floor
            }
        };
        let now = Instant::now();
        // Mark + clone under the lock; push outside it (a full queue in
        // Block mode would otherwise stall every complete() callback).
        let mut due: Vec<(usize, InferRequest<T>)> = Vec::new();
        {
            let mut inflight = self.inflight.lock();
            for entry in inflight.values_mut() {
                if !entry.hedged && now.duration_since(entry.dispatched) >= deadline {
                    entry.hedged = true;
                    entry.cell.add_copy();
                    due.push((entry.hedge_shard, entry.req.clone()));
                }
            }
        }
        for (shard, req) in due {
            self.hedges.fetch_add(1, Ordering::Relaxed);
            self.shards[shard].hedged.fetch_add(1, Ordering::Relaxed);
            self.push_copy(shard, req);
        }
    }
}

/// What a shard thread hands back when it drains.
struct ShardRun {
    report: ServingReport,
    breaker_state: BreakerSnapshot,
}

/// A running fleet; see the [module docs](self).
pub struct Router<T: Float> {
    inner: Arc<RouterInner<T>>,
    config: RouterConfig,
    threads: Vec<JoinHandle<ShardRun>>,
    monitor: Option<JoinHandle<()>>,
}

impl<T: Float> Router<T> {
    /// Spawns `config.replicas` shard servers (each hosting every model
    /// in `models`, one per tenant) plus — in deadline mode — the hedge
    /// monitor. `on_terminal` receives exactly one client-terminal
    /// outcome per submitted request, called from shard threads.
    pub fn new(
        models: Vec<Brnn<T>>,
        mut config: RouterConfig,
        on_terminal: impl FnMut(Outcome<T>) + Send + 'static,
    ) -> Self {
        assert!(config.replicas >= 1, "a fleet needs at least one replica");
        assert!(!models.is_empty(), "a fleet needs at least one tenant");
        if config.replicas == 1 {
            config.hedge = HedgePolicy::Off;
        }
        config.serve.cancel_sheds_work = config.hedge.cancel_sheds_work();

        // Servers first: each ShardState shares the server's live
        // breaker cell, so routing probes see health updates without any
        // channel between router and shard.
        let mut servers = Vec::with_capacity(config.replicas);
        let mut shards = Vec::with_capacity(config.replicas);
        for ix in 0..config.replicas {
            let server = Server::with_tenants(models.clone(), config.serve);
            if let Some(base) = config.fault {
                server.install_fault_plan(FaultConfig {
                    seed: base.seed.wrapping_add(ix as u64),
                    ..base
                });
            }
            shards.push(ShardState {
                queue: Arc::new(AdmissionQueue::new(
                    config.serve.queue_capacity,
                    config.serve.policy,
                )),
                breaker: server.breaker_cell(),
                routed: AtomicU64::new(0),
                hedged: AtomicU64::new(0),
            });
            servers.push(server);
        }
        let inner = Arc::new(RouterInner {
            shards,
            routing: config.routing,
            hedge: config.hedge,
            inflight: Mutex::new(HashMap::new()),
            latency: Mutex::new(LatencyWindow::new(512)),
            on_terminal: Mutex::new(Box::new(on_terminal)),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            cancelled_copies: AtomicU64::new(0),
            late_events: AtomicU64::new(0),
            monitor_stop: AtomicBool::new(false),
            started: Mutex::new(!config.start_paused),
            start_cv: Condvar::new(),
        });

        let mut threads = Vec::with_capacity(config.replicas);
        for (ix, server) in servers.into_iter().enumerate() {
            let queue = Arc::clone(&inner.shards[ix].queue);
            let inner_cb = Arc::clone(&inner);
            let handle = thread::Builder::new()
                .name(format!("bpar-shard-{ix}"))
                .spawn(move || {
                    inner_cb.wait_start();
                    let start = Instant::now();
                    let mut metrics = MetricsCollector::new();
                    server.serve(&queue, &mut metrics, |o| inner_cb.complete(ix, o));
                    let report =
                        finish_report(metrics, Vec::new(), &queue, &server, start.elapsed());
                    ShardRun {
                        report,
                        breaker_state: BreakerSnapshot::from_u8(
                            server.breaker_cell().load(Ordering::Relaxed),
                        ),
                    }
                })
                .expect("spawn shard thread");
            threads.push(handle);
        }

        let monitor = match config.hedge {
            HedgePolicy::Deadline {
                quantile,
                min_samples,
                floor,
                tick,
            } => {
                let inner_m = Arc::clone(&inner);
                Some(
                    thread::Builder::new()
                        .name("bpar-hedge-monitor".to_string())
                        .spawn(move || {
                            inner_m.wait_start();
                            while !inner_m.monitor_stop.load(Ordering::Relaxed) {
                                inner_m.hedge_scan(quantile, min_samples, floor);
                                thread::sleep(tick);
                            }
                        })
                        .expect("spawn hedge monitor"),
                )
            }
            _ => None,
        };

        Self {
            inner,
            config,
            threads,
            monitor,
        }
    }

    /// Opens the start gate (no-op unless `start_paused`).
    pub fn release(&self) {
        self.inner.release();
    }

    /// Routes (and, in at-dispatch mode, immediately hedges) one
    /// request. The request's own `cancel` field is overwritten: the
    /// router owns claim accounting.
    pub fn submit(&self, mut req: InferRequest<T>) {
        let cell = Arc::new(CancelCell::new());
        req.cancel = Some(Arc::clone(&cell));
        let probes = self.inner.probes();
        let (primary, hedge_shard) = self.inner.routing.route(req.tenant, req.id, &probes);
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.shards[primary]
            .routed
            .fetch_add(1, Ordering::Relaxed);
        let at_dispatch = self.inner.hedge == HedgePolicy::AtDispatch;
        if at_dispatch {
            // Register the second copy before either is visible to a
            // shard, so no copy can ever observe outstanding == 0 early.
            cell.add_copy();
        }
        let entry = Inflight {
            req: req.clone(),
            cell,
            primary,
            hedge_shard,
            dispatched: Instant::now(),
            hedged: at_dispatch,
            failure: None,
        };
        // Entry goes in *before* any push: a shard could serve the copy
        // and call complete() before submit returns.
        self.inner.inflight.lock().insert(req.id, entry);
        let hedge_copy = at_dispatch.then(|| req.clone());
        self.inner.push_copy(primary, req);
        if let Some(copy) = hedge_copy {
            self.inner.hedges.fetch_add(1, Ordering::Relaxed);
            self.inner.shards[hedge_shard]
                .hedged
                .fetch_add(1, Ordering::Relaxed);
            self.inner.push_copy(hedge_shard, copy);
        }
    }

    /// Closes every shard queue, joins all threads, and returns the
    /// fleet report. Every submitted request is guaranteed a delivered
    /// client-terminal outcome by the time this returns.
    pub fn finish(mut self) -> RouterReport {
        // Order matters: stop hedging first (no new copies into closing
        // queues), then release the gate in case nobody did, then close.
        self.inner.monitor_stop.store(true, Ordering::Relaxed);
        self.inner.release();
        if let Some(m) = self.monitor.take() {
            m.join().expect("hedge monitor panicked");
        }
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        let mut runs = Vec::with_capacity(self.threads.len());
        for handle in self.threads.drain(..) {
            runs.push(handle.join().expect("shard thread panicked"));
        }
        let leftover = self.inner.inflight.lock().len();
        assert_eq!(
            leftover, 0,
            "conservation violated: {leftover} requests never reached a terminal outcome"
        );
        let inner = &self.inner;
        RouterReport {
            replicas: self.config.replicas,
            routing: self.config.routing.name().to_string(),
            hedge: self.config.hedge.name(),
            submitted: inner.submitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            served: inner.served.load(Ordering::Relaxed),
            failed: inner.failed.load(Ordering::Relaxed),
            shed: inner.shed.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            hedges: inner.hedges.load(Ordering::Relaxed),
            hedge_wins: inner.hedge_wins.load(Ordering::Relaxed),
            cancelled_copies: inner.cancelled_copies.load(Ordering::Relaxed),
            late_events: inner.late_events.load(Ordering::Relaxed),
            shards: runs
                .into_iter()
                .enumerate()
                .map(|(ix, run)| ShardReport {
                    shard: ix,
                    routed: inner.shards[ix].routed.load(Ordering::Relaxed),
                    hedged: inner.shards[ix].hedged.load(Ordering::Relaxed),
                    breaker_state: run.breaker_state.name().to_string(),
                    serving: run.report,
                })
                .collect(),
        }
    }
}
