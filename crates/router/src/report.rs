//! Fleet-level reporting: per-shard counters plus the router's own
//! accounting, with an explicitly **deterministic subset** that CI can
//! byte-compare across same-seed runs.

use bpar_serve::ServingReport;
use serde::Serialize;

/// One replica's view of the run.
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Primary copies this shard was routed.
    pub routed: u64,
    /// Hedge copies dispatched to this shard.
    pub hedged: u64,
    /// Breaker snapshot name at the end of the run.
    pub breaker_state: String,
    /// The shard server's full serving report (outcome counters, latency
    /// and queue-depth percentiles, plan/pool/arena counters, injected
    /// fault counts).
    pub serving: ServingReport,
}

/// Result of one routed run.
#[derive(Debug, Clone, Serialize)]
pub struct RouterReport {
    /// Number of replicas.
    pub replicas: usize,
    /// Routing policy name.
    pub routing: String,
    /// Hedging policy name.
    pub hedge: String,
    /// Requests submitted to the router.
    pub submitted: u64,
    /// Client-terminal outcomes delivered (must equal `submitted`).
    pub completed: u64,
    /// Client-terminal served responses.
    pub served: u64,
    /// Client-terminal failures (every copy failed).
    pub failed: u64,
    /// Client-terminal sheds.
    pub shed: u64,
    /// Client-terminal rejections.
    pub rejected: u64,
    /// Hedge copies dispatched fleet-wide.
    pub hedges: u64,
    /// Served requests whose winning copy ran on the hedge shard, not
    /// the primary. **Racy by nature** (a claim race decides it) — never
    /// part of the deterministic subset.
    pub hedge_wins: u64,
    /// Copies that lost the claim race and were cancelled.
    pub cancelled_copies: u64,
    /// Copy-level events that arrived after their request already had a
    /// client-terminal outcome (the expected fate of every losing copy).
    pub late_events: u64,
    /// Per-shard breakdowns.
    pub shards: Vec<ShardReport>,
}

impl RouterReport {
    /// The counters that are bit-identical across same-seed runs when
    /// the configuration itself is deterministic (hash routing with
    /// hedging `off` or `at-dispatch`, pre-enqueued load). Rendered as
    /// canonical JSON for `cmp`-style CI gating.
    ///
    /// Deliberately **excluded**: `hedge_wins` and each shard's
    /// served/cancelled split (the claim race picks the winner), and
    /// anything latency-derived. Per-shard `routed`, injected-fault
    /// counts, and retry totals *are* included — with hash routing the
    /// per-shard request sets are a pure function of the keys, and the
    /// fault plan draws deterministically per shard.
    pub fn deterministic_counters_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        s.push_str(&format!("  \"routing\": \"{}\",\n", self.routing));
        s.push_str(&format!("  \"hedge\": \"{}\",\n", self.hedge));
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"served\": {},\n", self.served));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"shed\": {},\n", self.shed));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"hedges\": {},\n", self.hedges));
        s.push_str("  \"shards\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"shard\": {}, \"routed\": {}, \"hedged\": {}, \
                 \"injected_panics\": {}, \"injected_straggles\": {}, \
                 \"retries\": {}, \"tenant_evictions\": {}}}{}\n",
                sh.shard,
                sh.routed,
                sh.hedged,
                sh.serving.injected_panics,
                sh.serving.injected_straggles,
                sh.serving.retries,
                sh.serving.tenant_evictions,
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_subset_omits_racy_counters() {
        let report = RouterReport {
            replicas: 2,
            routing: "hash".into(),
            hedge: "at-dispatch".into(),
            submitted: 10,
            completed: 10,
            served: 9,
            failed: 1,
            shed: 0,
            rejected: 0,
            hedges: 10,
            hedge_wins: 3,
            cancelled_copies: 9,
            late_events: 9,
            shards: vec![],
        };
        let json = report.deterministic_counters_json();
        assert!(json.contains("\"served\": 9"));
        assert!(!json.contains("hedge_wins"), "racy counter leaked: {json}");
        assert!(!json.contains("late_events"));
        // Canonical form: stable under re-rendering.
        assert_eq!(json, report.deterministic_counters_json());
    }
}
