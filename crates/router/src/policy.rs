//! Routing policies: which shard gets a request, and which shard would
//! host its hedge copy.
//!
//! Both policies return an ordered **pair** of shards. The first is the
//! primary; the second is where a hedged copy goes if the hedging policy
//! fires. Producing the pair up front (instead of re-routing at hedge
//! time) keeps hash routing fully deterministic: the hedge shard of a
//! request is a pure function of its key, independent of when — or
//! whether — the hedge actually dispatches.

use bpar_serve::BreakerSnapshot;

/// splitmix64: the same cheap, well-distributed mixer the serve crate
/// uses for retry jitter. Good enough for placement; not cryptographic.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The routing key: tenant and request id folded together, so one
/// tenant's traffic spreads across shards while any fixed (tenant, id)
/// always lands on the same pair.
pub fn route_key(tenant: u32, id: u64) -> u64 {
    mix(((tenant as u64) << 48) ^ id)
}

/// A router-side view of one shard, sampled at routing time.
#[derive(Debug, Clone, Copy)]
pub struct ShardProbe {
    /// Admission-queue depth right now.
    pub depth: usize,
    /// Latest published breaker snapshot.
    pub breaker: BreakerSnapshot,
}

/// How the router places primaries and hedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Rendezvous (highest-random-weight) hashing on
    /// [`route_key`]. Deterministic: the shard pair depends only on the
    /// key and the shard count, and removing a shard only remaps the
    /// keys that lived there. Ignores load.
    Hash,
    /// Lowest sampled queue depth wins; ties break toward the lowest
    /// shard index. Shards whose breaker is fully open are skipped
    /// (half-open shards stay eligible — they need light traffic to
    /// close). If every shard is open, falls back to [`Self::Hash`]:
    /// refusing to route would turn a degraded fleet into a dead one.
    LeastLoaded,
}

impl RoutingPolicy {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(Self::Hash),
            "least-loaded" => Some(Self::LeastLoaded),
            _ => None,
        }
    }

    /// Report spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Hash => "hash",
            Self::LeastLoaded => "least-loaded",
        }
    }

    /// Picks `(primary, hedge)` for a request among `probes.len()`
    /// shards. With one shard both are 0 (hedging degenerates to a
    /// retry on the same shard and is disabled at the router level).
    pub fn route(&self, tenant: u32, id: u64, probes: &[ShardProbe]) -> (usize, usize) {
        debug_assert!(!probes.is_empty());
        if probes.len() == 1 {
            return (0, 0);
        }
        match self {
            Self::Hash => rendezvous_pair(route_key(tenant, id), probes.len()),
            Self::LeastLoaded => {
                let mut best: Option<(usize, usize)> = None; // (depth, shard)
                let mut second: Option<(usize, usize)> = None;
                for (i, p) in probes.iter().enumerate() {
                    if p.breaker == BreakerSnapshot::Open {
                        continue;
                    }
                    let cand = (p.depth, i);
                    match best {
                        None => best = Some(cand),
                        Some(b) if cand < b => {
                            second = best;
                            best = Some(cand);
                        }
                        Some(_) => match second {
                            None => second = Some(cand),
                            Some(s) if cand < s => second = Some(cand),
                            Some(_) => {}
                        },
                    }
                }
                match (best, second) {
                    (Some((_, p)), Some((_, h))) => (p, h),
                    // One healthy shard: hedge onto the deterministic
                    // alternative so a hedge still leaves the shard.
                    (Some((_, p)), None) => {
                        let (a, b) = rendezvous_pair(route_key(tenant, id), probes.len());
                        (p, if a == p { b } else { a })
                    }
                    (None, _) => rendezvous_pair(route_key(tenant, id), probes.len()),
                }
            }
        }
    }
}

/// Rendezvous hashing: score every shard against the key, take the top
/// two. The runner-up is the natural hedge target — it is exactly the
/// shard the key would move to if the primary disappeared.
pub fn rendezvous_pair(key: u64, shards: usize) -> (usize, usize) {
    debug_assert!(shards >= 2);
    // Shard counts are single digits; a sort over them costs nothing and
    // is obviously correct (distinct indices break score ties).
    let mut scored: Vec<(u64, usize)> = (0..shards)
        .map(|shard| (mix(key ^ mix(shard as u64 + 1)), shard))
        .collect();
    scored.sort_unstable_by(|a, b| b.cmp(a));
    (scored[0].1, scored[1].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probes(depths: &[usize]) -> Vec<ShardProbe> {
        depths
            .iter()
            .map(|&depth| ShardProbe {
                depth,
                breaker: BreakerSnapshot::Closed,
            })
            .collect()
    }

    #[test]
    fn hash_routing_is_deterministic_and_pairs_differ() {
        let p = probes(&[0, 0, 0, 0]);
        for id in 0..200u64 {
            for tenant in 0..3u32 {
                let a = RoutingPolicy::Hash.route(tenant, id, &p);
                let b = RoutingPolicy::Hash.route(tenant, id, &p);
                assert_eq!(a, b);
                assert_ne!(a.0, a.1, "hedge shard must differ from primary");
                assert!(a.0 < 4 && a.1 < 4);
            }
        }
    }

    #[test]
    fn hash_routing_spreads_across_shards() {
        let p = probes(&[0; 4]);
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            let (primary, _) = RoutingPolicy::Hash.route(0, id, &p);
            counts[primary] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > 150 && c < 350,
                "shard {shard} got {c}/1000 — rendezvous should spread evenly"
            );
        }
    }

    #[test]
    fn least_loaded_prefers_shallow_queues_and_breaks_ties_low() {
        let (p, h) = RoutingPolicy::LeastLoaded.route(0, 1, &probes(&[5, 2, 9, 2]));
        assert_eq!((p, h), (1, 3), "depth 2 beats 5 and 9; tie breaks low");
        let (p, _) = RoutingPolicy::LeastLoaded.route(0, 1, &probes(&[4, 4, 4]));
        assert_eq!(p, 0);
    }

    #[test]
    fn least_loaded_skips_open_breakers_but_keeps_half_open() {
        let mut p = probes(&[0, 5, 9]);
        p[0].breaker = BreakerSnapshot::Open;
        let (primary, hedge) = RoutingPolicy::LeastLoaded.route(0, 7, &p);
        assert_eq!(primary, 1, "shallowest healthy shard");
        assert_eq!(hedge, 2);
        p[0].breaker = BreakerSnapshot::HalfOpen;
        let (primary, _) = RoutingPolicy::LeastLoaded.route(0, 7, &p);
        assert_eq!(primary, 0, "half-open shards still take traffic");
    }

    #[test]
    fn all_open_falls_back_to_hash() {
        let mut p = probes(&[1, 2, 3]);
        for probe in &mut p {
            probe.breaker = BreakerSnapshot::Open;
        }
        let got = RoutingPolicy::LeastLoaded.route(3, 99, &p);
        assert_eq!(got, RoutingPolicy::Hash.route(3, 99, &p));
    }

    #[test]
    fn single_shard_routes_to_itself() {
        assert_eq!(RoutingPolicy::Hash.route(0, 5, &probes(&[0])), (0, 0));
        assert_eq!(
            RoutingPolicy::LeastLoaded.route(0, 5, &probes(&[3])),
            (0, 0)
        );
    }
}
