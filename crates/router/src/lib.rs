//! # bpar-router
//!
//! Sharded multi-replica serving tier over `bpar-serve`: N thread-owned
//! [`bpar_serve::Server`] replicas (each with its own runtime, admission
//! queue, micro-batcher, circuit breaker, and buffer pool) behind one
//! routed submit path.
//!
//! The single-server tier (PR 4/5) scales until one serving loop — or
//! one straggling batch — becomes the bottleneck. This crate adds the
//! fleet layer the paper's task-parallel runtime makes cheap: because a
//! replica is just a thread owning a `Runtime`, a "fleet" is plain
//! threads in one process, and cross-replica coordination reduces to a
//! lock-free claim cell per request.
//!
//! * [`policy`] — where a request (and its potential hedge copy) goes:
//!   rendezvous hashing on the `(tenant, id)` key, or least-loaded by
//!   sampled queue depth with breaker-aware shard skipping.
//! * [`hedge`] — when a redundant copy dispatches: never, at dispatch
//!   (deterministic redundancy), or past a latency-quantile deadline
//!   ("The Tail at Scale"-style).
//! * [`router`] — the submit path, copy accounting (exactly one
//!   client-terminal outcome per request), and fleet teardown.
//! * [`tenants`] — the tenant directory: per-tenant models with
//!   tenant-keyed plans, batches, and buffers underneath.
//! * [`report`] — per-shard + fleet counters, with an explicitly
//!   deterministic subset for byte-compare CI gating.

pub mod hedge;
pub mod policy;
pub mod report;
pub mod router;
pub mod tenants;

pub use hedge::{HedgePolicy, LatencyWindow};
pub use policy::{rendezvous_pair, route_key, RoutingPolicy, ShardProbe};
pub use report::{RouterReport, ShardReport};
pub use router::{Router, RouterConfig};
pub use tenants::{build_models, default_tenants, parse_tenants, TenantSpec};
