//! Tenant directory: the fleet's tenant list and their models.
//!
//! A *tenant* is an isolation domain: its own weights, its own compiled
//! plans (the executor's plan cache is tenant-keyed — see
//! `bpar_core::exec::PlanKey`), its own batches, and its own pooled
//! buffers. Requests carry a tenant index; every replica hosts every
//! tenant so any shard can serve any request.
//!
//! The on-disk format (`bpar serve --tenants FILE`) is one tenant per
//! line — `name seed` — with `#` comments and blank lines ignored. The
//! seed keys the tenant's weight initialization, so two tenants with the
//! same architecture still have distinct (and deterministic) weights.

use bpar_core::model::{Brnn, BrnnConfig};
use bpar_tensor::Float;

/// One parsed tenant line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable name (reports only; routing uses the index).
    pub name: String,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// Parses a tenants file. Errors carry the offending line for the CLI
/// to print.
pub fn parse_tenants(text: &str) -> Result<Vec<TenantSpec>, String> {
    let mut specs = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("non-empty line has a first token");
        let seed = parts
            .next()
            .ok_or_else(|| format!("line {}: expected `name seed`, got `{line}`", ln + 1))?
            .parse::<u64>()
            .map_err(|_| format!("line {}: seed is not a u64 in `{line}`", ln + 1))?;
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens in `{line}`", ln + 1));
        }
        specs.push(TenantSpec {
            name: name.to_string(),
            seed,
        });
    }
    if specs.is_empty() {
        return Err("tenants file defines no tenants".to_string());
    }
    Ok(specs)
}

/// A default directory of `n` tenants (`t0`, `t1`, …) with distinct
/// seeds, used when no tenants file is given.
pub fn default_tenants(n: usize) -> Vec<TenantSpec> {
    (0..n.max(1))
        .map(|i| TenantSpec {
            name: format!("t{i}"),
            seed: 0xBEEF + i as u64,
        })
        .collect()
}

/// Materializes one model per tenant from a shared architecture.
pub fn build_models<T: Float>(config: BrnnConfig, specs: &[TenantSpec]) -> Vec<Brnn<T>> {
    specs.iter().map(|s| Brnn::new(config, s.seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_seeds_comments_and_blanks() {
        let text = "# fleet tenants\n\nalpha 7\n  beta 9\n";
        let specs = parse_tenants(text).unwrap();
        assert_eq!(
            specs,
            vec![
                TenantSpec {
                    name: "alpha".into(),
                    seed: 7
                },
                TenantSpec {
                    name: "beta".into(),
                    seed: 9
                },
            ]
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_tenants("alpha").is_err());
        assert!(parse_tenants("alpha notanumber").is_err());
        assert!(parse_tenants("alpha 3 extra").is_err());
        assert!(parse_tenants("# only comments\n").is_err());
    }

    #[test]
    fn distinct_seeds_give_distinct_weights() {
        let specs = default_tenants(2);
        let models: Vec<Brnn<f32>> = build_models(BrnnConfig::default(), &specs);
        assert_eq!(models.len(), 2);
        assert_ne!(models[0].dense.w.as_slice(), models[1].dense.w.as_slice(),);
    }
}
