//! Hedged dispatch: when and how a request gets a redundant copy.
//!
//! The router supports two hedging modes on top of "off":
//!
//! * **At-dispatch** — every request is duplicated onto its hedge shard
//!   the moment it is routed. This is the *deterministic redundancy*
//!   mode: both copies always execute fully, the
//!   [`bpar_runtime::CancelCell`] claim decides only which copy's
//!   response is delivered, and same-seed runs therefore produce
//!   bit-identical work counters (the CI `fleet-chaos` job diffs them).
//! * **Deadline** — the classic tail-latency hedge (Dean & Barroso,
//!   "The Tail at Scale"): a copy is dispatched only if the primary has
//!   not answered within a deadline derived from a quantile of recently
//!   observed end-to-end latencies. This is the *latency-optimizing*
//!   mode: cancellation sheds work (including mid-batch, via the
//!   runtime's cancel token), so counters are load-dependent and only
//!   the client-visible outcome set is deterministic.

use std::time::Duration;

/// Hedging configuration; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgePolicy {
    /// No redundant copies; every request runs exactly once.
    Off,
    /// Duplicate every request at routing time (deterministic mode).
    AtDispatch,
    /// Duplicate a request only once it has been outstanding longer than
    /// the observed `quantile` of served latencies.
    Deadline {
        /// Latency quantile that arms the hedge (e.g. `0.95`: hedge the
        /// slowest ~5% of requests).
        quantile: f64,
        /// Served samples required before the quantile is trusted; until
        /// then the `floor` alone is the deadline.
        min_samples: usize,
        /// Lower bound on the hedge deadline, so a burst of fast
        /// responses cannot arm hedges for effectively every request.
        floor: Duration,
        /// How often the monitor scans outstanding requests.
        tick: Duration,
    },
}

impl HedgePolicy {
    /// A deadline policy with the tuning the CLI and fleet bench use:
    /// scan every 200µs, never hedge before 1ms.
    pub fn deadline(quantile: f64) -> Self {
        Self::Deadline {
            quantile: quantile.clamp(0.5, 0.999),
            min_samples: 16,
            floor: Duration::from_millis(1),
            tick: Duration::from_micros(200),
        }
    }

    /// Report spelling.
    pub fn name(&self) -> String {
        match self {
            Self::Off => "off".to_string(),
            Self::AtDispatch => "at-dispatch".to_string(),
            Self::Deadline { quantile, .. } => format!("deadline-q{quantile}"),
        }
    }

    /// Whether cancelled copies should shed their remaining work. False
    /// only for [`Self::AtDispatch`], whose whole point is that the work
    /// performed is independent of claim-race timing.
    pub fn cancel_sheds_work(&self) -> bool {
        !matches!(self, Self::AtDispatch)
    }
}

/// Fixed-capacity ring of recently served end-to-end latencies (µs),
/// feeding the deadline quantile. A ring — not the full history — so the
/// deadline tracks the *current* service regime: after a straggle storm
/// passes, old slow samples age out and the hedge deadline tightens
/// again.
#[derive(Debug)]
pub struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
}

impl LatencyWindow {
    /// A window retaining the most recent `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity.max(1)),
            next: 0,
            filled: false,
        }
    }

    /// Records one served latency.
    pub fn record(&mut self, micros: u64) {
        if self.samples.len() < self.samples.capacity() {
            self.samples.push(micros);
        } else {
            self.samples[self.next] = micros;
            self.filled = true;
        }
        self.next = (self.next + 1) % self.samples.capacity();
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile of the held samples (nearest-rank), or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let ix = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[ix])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_tracks_recent_samples_only() {
        let mut w = LatencyWindow::new(4);
        assert_eq!(w.quantile(0.5), None);
        for v in [100, 200, 300, 400] {
            w.record(v);
        }
        assert_eq!(w.quantile(1.0), Some(400));
        assert_eq!(w.quantile(0.0), Some(100));
        // Overwrite the window with fast samples: the old regime is gone.
        for _ in 0..4 {
            w.record(10);
        }
        assert_eq!(w.quantile(1.0), Some(10));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn modes_report_and_shed_as_documented() {
        assert!(HedgePolicy::Off.cancel_sheds_work());
        assert!(!HedgePolicy::AtDispatch.cancel_sheds_work());
        assert!(HedgePolicy::deadline(0.95).cancel_sheds_work());
        assert_eq!(HedgePolicy::deadline(0.95).name(), "deadline-q0.95");
        assert_eq!(HedgePolicy::AtDispatch.name(), "at-dispatch");
    }
}
