//! Fleet-level conservation properties (ISSUE tentpole invariant):
//! under **any** routing policy × hedging mode × fault plan, every
//! request submitted to the router reaches **exactly one**
//! client-terminal outcome — served, shed, rejected, or failed — no
//! matter how many redundant copies were dispatched, cancelled, or
//! crashed; and the deterministic counter subset is byte-identical
//! across same-seed runs in the deterministic configurations.
//!
//! Determinism harness (the PR-4 recipe, fleet edition): the router
//! starts **paused**, every request is submitted before the shard serve
//! loops run (per-shard queue capacity ≥ 2× requests, so even
//! at-dispatch double-enqueue never blocks), no deadlines, an
//! effectively infinite batch window, immediate retries, and unlimited
//! fault budgets. Under those conditions each shard's batch sequence is
//! a pure function of (seed, routed key set).

use bpar_core::model::BrnnConfig;
use bpar_router::{
    build_models, default_tenants, HedgePolicy, Router, RouterConfig, RouterReport, RoutingPolicy,
};
use bpar_runtime::FaultConfig;
use bpar_serve::breaker::BreakerConfig;
use bpar_serve::request::{InferRequest, Outcome};
use bpar_serve::server::{RetryPolicy, ServeConfig};
use bpar_serve::{BackpressurePolicy, BatchPolicy};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 4;

fn arch() -> BrnnConfig {
    BrnnConfig {
        input_size: DIM,
        hidden_size: 3,
        layers: 1,
        seq_len: 6,
        output_size: 3,
        ..BrnnConfig::default()
    }
}

fn frames(len: usize, salt: u64) -> Vec<Vec<f32>> {
    (0..len)
        .map(|t| {
            (0..DIM)
                .map(|c| ((salt as usize + 5 * t + c) % 9) as f32 * 0.2 - 0.8)
                .collect()
        })
        .collect()
}

/// One fleet run reduced to comparable parts.
struct FleetRun {
    /// Sorted (id, kind) client-terminal outcomes.
    terminal: Vec<(u64, &'static str)>,
    report: RouterReport,
}

#[allow(clippy::too_many_arguments)]
fn run_fleet(
    replicas: usize,
    tenants: usize,
    routing: RoutingPolicy,
    hedge: HedgePolicy,
    fault: Option<FaultConfig>,
    max_batch: usize,
    max_retries: u32,
    workers: usize,
    requests: u64,
    plan_byte_budget: Option<u64>,
) -> FleetRun {
    let serve = ServeConfig {
        // At-dispatch hedging enqueues two copies per request; capacity
        // for all of them on one shard means submit never blocks.
        queue_capacity: 2 * requests as usize + 4,
        policy: BackpressurePolicy::Block,
        batch: BatchPolicy::new(max_batch, Duration::from_secs(3600)),
        workers,
        retry: RetryPolicy::immediate(max_retries),
        breaker: BreakerConfig::default(),
        plan_byte_budget,
        ..ServeConfig::default()
    };
    let config = RouterConfig {
        replicas,
        routing,
        hedge,
        serve,
        fault,
        start_paused: true,
    };
    let models = build_models::<f32>(arch(), &default_tenants(tenants));
    let terminal: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&terminal);
    let router = Router::new(models, config, move |o| {
        let row = match &o {
            Outcome::Served(r) => (r.id, "served"),
            Outcome::Shed { id } => (*id, "shed"),
            Outcome::Rejected { id } => (*id, "rejected"),
            Outcome::Failed { id } => (*id, "failed"),
            Outcome::Cancelled { id } => (*id, "cancelled"),
        };
        sink.lock().push(row);
    });
    for id in 0..requests {
        let len = 3 + (id as usize % 4); // lengths 3..=6: several shapes
        let mut req = InferRequest::new(id, frames(len, id));
        req.tenant = (id % tenants as u64) as u32;
        router.submit(req);
    }
    router.release();
    let report = router.finish();
    let mut terminal = Arc::try_unwrap(terminal)
        .unwrap_or_else(|_| panic!("sink still shared after finish"))
        .into_inner();
    terminal.sort_unstable();
    FleetRun { terminal, report }
}

fn hedge_mode(ix: usize) -> HedgePolicy {
    match ix {
        0 => HedgePolicy::Off,
        1 => HedgePolicy::AtDispatch,
        // An aggressive deadline (tiny floor, few samples) so the
        // monitor actually hedges in a short test run.
        _ => HedgePolicy::Deadline {
            quantile: 0.5,
            min_samples: 4,
            floor: Duration::from_micros(10),
            tick: Duration::from_micros(50),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: exactly one client-terminal outcome per
    /// request under any fault plan × routing policy × hedge mode, with
    /// router-level accounting consistent with the delivered outcomes.
    #[test]
    fn exactly_one_terminal_outcome_per_request(
        seed in 0u64..1_000_000,
        panic_pm in 0u32..150,
        straggle_pm in 0u32..40,
        replicas in 1usize..5,
        tenants in 1usize..3,
        routing_ix in 0usize..2,
        hedge_ix in 0usize..3,
        max_batch in 1usize..4,
        max_retries in 0u32..3,
        workers in 1usize..3,
        requests in 8u64..24,
    ) {
        let routing = [RoutingPolicy::Hash, RoutingPolicy::LeastLoaded][routing_ix];
        let fault = FaultConfig {
            seed,
            panic_rate: panic_pm as f64 / 1000.0,
            straggle_rate: straggle_pm as f64 / 1000.0,
            straggle: Duration::from_micros(20),
            ..FaultConfig::default()
        };
        let run = run_fleet(
            replicas, tenants, routing, hedge_mode(hedge_ix),
            Some(fault), max_batch, max_retries, workers, requests, None,
        );

        let mut seen: HashMap<u64, u32> = HashMap::new();
        for (id, kind) in &run.terminal {
            prop_assert_ne!(*kind, "cancelled", "Cancelled is copy-level, never client-terminal");
            *seen.entry(*id).or_insert(0) += 1;
        }
        for id in 0..requests {
            prop_assert_eq!(
                seen.get(&id).copied().unwrap_or(0), 1,
                "request {} must reach exactly one client-terminal outcome", id
            );
        }
        let r = &run.report;
        prop_assert_eq!(r.submitted, requests);
        prop_assert_eq!(r.completed, requests);
        prop_assert_eq!(r.served + r.failed + r.shed + r.rejected, requests);
        // Full capacity, no deadlines: nothing sheds or rejects.
        prop_assert_eq!(r.served + r.failed, requests);
        let routed: u64 = r.shards.iter().map(|s| s.routed).sum();
        prop_assert_eq!(routed, requests, "every request routed to exactly one primary");
        if matches!(hedge_mode(hedge_ix), HedgePolicy::AtDispatch) && replicas > 1 {
            prop_assert_eq!(r.hedges, requests, "at-dispatch hedges every request");
        }
        if replicas == 1 {
            prop_assert_eq!(r.hedges, 0, "a single replica must never hedge");
        }
    }

    /// Same seed, hash routing, hedging off or at-dispatch → the
    /// deterministic counter subset and the terminal outcome set are
    /// byte-identical across runs, even with faults, stragglers, and
    /// redundant copies racing for claims.
    #[test]
    fn same_seed_deterministic_counters(
        seed in 0u64..1_000_000,
        panic_pm in 1u32..120,
        replicas in 2usize..5,
        tenants in 1usize..3,
        at_dispatch_ix in 0usize..2,
        max_batch in 1usize..4,
        max_retries in 1u32..3,
        workers in 1usize..3,
    ) {
        let hedge = if at_dispatch_ix == 1 { HedgePolicy::AtDispatch } else { HedgePolicy::Off };
        let fault = FaultConfig {
            seed,
            panic_rate: panic_pm as f64 / 1000.0,
            straggle_rate: 0.02,
            straggle: Duration::from_micros(20),
            ..FaultConfig::default()
        };
        let run = || run_fleet(
            replicas, tenants, RoutingPolicy::Hash, hedge,
            Some(fault), max_batch, max_retries, workers, 20, None,
        );
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.report.deterministic_counters_json(),
            b.report.deterministic_counters_json(),
            "same-seed fleet runs must agree on the deterministic counter subset"
        );
        prop_assert_eq!(a.terminal, b.terminal, "terminal outcome sets must match");
    }
}

/// Clean fleet, hash routing: everything serves, primaries spread over
/// shards, and with at-dispatch hedging every request also lands a copy
/// on its (distinct) hedge shard.
#[test]
fn clean_fleet_spreads_and_hedges() {
    let run = run_fleet(
        4,
        2,
        RoutingPolicy::Hash,
        HedgePolicy::AtDispatch,
        None,
        2,
        1,
        2,
        32,
        None,
    );
    let r = &run.report;
    assert_eq!(r.served, 32);
    assert_eq!(r.failed + r.shed + r.rejected, 0);
    assert_eq!(r.hedges, 32);
    assert_eq!(
        r.cancelled_copies, 32,
        "with every request duplicated and served, every loser cancels: {r:?}"
    );
    for shard in &r.shards {
        assert!(
            shard.routed > 0,
            "rendezvous hashing should give every shard primaries over 32 keys"
        );
    }
}

/// A tight plan byte budget forces tenant-LRU eviction under fleet load
/// while the run still serves everything (evicted plans recompile on
/// their tenant's next request) — and no shard's resident arena ever
/// exceeds the budget.
#[test]
fn tenant_plan_budget_holds_under_fleet_load() {
    // Learn the arena cost of one tenant's working set (4 request
    // lengths → up to 4 cached plan shapes) on this architecture.
    let probe = run_fleet(
        1,
        1,
        RoutingPolicy::Hash,
        HedgePolicy::Off,
        None,
        1,
        0,
        1,
        8,
        None,
    );
    let one_tenant = probe.report.shards[0].serving.arena_bytes;
    assert!(one_tenant > 0, "probe must cache plans");
    // Half of one tenant's working set; three tenants fight over it.
    let budget = one_tenant / 2;
    let run = run_fleet(
        2,
        3,
        RoutingPolicy::Hash,
        HedgePolicy::Off,
        None,
        1,
        0,
        1,
        30,
        Some(budget),
    );
    let r = &run.report;
    assert_eq!(r.served, 30, "evictions must not lose requests: {r:?}");
    let mut evictions = 0;
    for shard in &r.shards {
        assert!(
            shard.serving.arena_bytes <= budget,
            "shard {} arena {} exceeds budget {}",
            shard.shard,
            shard.serving.arena_bytes,
            budget
        );
        evictions += shard.serving.tenant_evictions;
    }
    assert!(
        evictions > 0,
        "three tenants through a half-tenant budget must evict: {r:?}"
    );
}
