use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig};

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 512,
        layers: 8,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    for (cores, mbs) in [
        (8usize, 8usize),
        (8, 12),
        (12, 12),
        (16, 12),
        (24, 12),
        (8, 6),
        (4, 8),
    ] {
        let g = build_graph(&GraphSpec::training(cfg, 120).with_mbs(mbs));
        let loc = simulate(&g, &SimConfig::xeon(cores));
        let fifo = simulate(
            &g,
            &SimConfig::xeon(cores).with_policy(SchedulerPolicy::Fifo),
        );
        println!("cores {cores} mbs {mbs}: loc {:.2}s (util {:.2}) fifo {:.2}s (util {:.2}) reduction {:.0}%",
            loc.makespan, loc.utilization(), fifo.makespan, fifo.utilization(),
            (1.0 - loc.makespan/fifo.makespan)*100.0);
    }
}
