use bpar_runtime::graph::{TaskGraph, TaskNode};
use bpar_sim::{simulate, SimConfig};

fn main() {
    let mut g = TaskGraph::new();
    // Task 0: long, Task 1: long. Task 2 has duplicate pred 0 plus pred 1.
    g.add_task_with_preds(TaskNode::new("a").flops(30_000_000_000), &[]);
    g.add_task_with_preds(TaskNode::new("b").flops(60_000_000_000), &[]);
    let t2 = g.add_task_with_preds(TaskNode::new("c").flops(1_000_000), &[0, 0, 1]);
    g.validate().expect("validate should pass");
    println!(
        "preds of 2: {:?}, succs of 0: {:?}",
        g.preds(t2.index()),
        g.succs(0)
    );
    let res = simulate(&g, &SimConfig::xeon(2));
    for r in &res.records {
        println!("task {} start {:.3} end {:.3}", r.task, r.start, r.end);
    }
}
