//! Demonstrates the pinned-vs-unpinned worker placement effect on narrow
//! task graphs (the Fig. 3 NUMA discussion): with a rotating idle-core
//! scan, tasks smear across both sockets and pay locality/NUMA penalties.
//!
//! Run with: `cargo run --release -p bpar-sim --example numa_check`
use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::{simulate, SimConfig};

fn main() {
    let cfg = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 8,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    for mbs in [2usize, 8] {
        let g = build_graph(&GraphSpec::training(cfg, 120).with_mbs(mbs));
        for cores in [24usize, 32, 48] {
            let pinned = simulate(&g, &SimConfig::xeon(cores)).makespan;
            let unpinned = simulate(&g, &SimConfig::xeon(cores).with_rotating_scan(true)).makespan;
            println!(
                "mbs {mbs} cores {cores}: pinned {pinned:.3}s unpinned {unpinned:.3}s (+{:.0}%)",
                (unpinned / pinned - 1.0) * 100.0
            );
        }
    }
}
