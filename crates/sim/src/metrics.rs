//! Simulation results and derived metrics.
//!
//! Provides the quantities the paper's evaluation reports: batch times
//! (Tables III/IV, Figs. 3–6, 8), IPC and L3-MPKI execution-time
//! histograms (Fig. 7), task-granularity statistics and working-set /
//! concurrency accounting (§IV-B).

use serde::Serialize;

/// One simulated task execution.
#[derive(Debug, Clone, Serialize)]
pub struct SimTaskRecord {
    /// Task id in the graph.
    pub task: usize,
    /// Task kind label.
    pub label: &'static str,
    /// Client tag.
    pub tag: u64,
    /// Core the task ran on.
    pub core: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Declared working set, bytes.
    pub working_set_bytes: usize,
    /// Instruction-count proxy.
    pub instructions: f64,
    /// Bytes fetched from memory (past L3), including NUMA inflation.
    pub miss_bytes: f64,
}

impl bpar_runtime::trace::TraceEvent for SimTaskRecord {
    fn name(&self) -> &str {
        self.label
    }
    fn lane(&self) -> usize {
        self.core
    }
    fn start(&self) -> f64 {
        self.start
    }
    fn end(&self) -> f64 {
        self.end
    }
}

impl SimTaskRecord {
    /// Task duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// IPC proxy: instructions / (cycles the task occupied its core).
    pub fn ipc(&self, clock_hz: f64) -> f64 {
        let cycles = self.duration() * clock_hz;
        if cycles <= 0.0 {
            0.0
        } else {
            self.instructions / cycles
        }
    }

    /// L3 misses per kilo-instruction (64-byte lines).
    pub fn mpki(&self) -> f64 {
        if self.instructions <= 0.0 {
            0.0
        } else {
            (self.miss_bytes / 64.0) / (self.instructions / 1000.0)
        }
    }
}

/// Full result of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// End-to-end execution time, seconds.
    pub makespan: f64,
    /// Active core count.
    pub cores: usize,
    /// Core clock (for the IPC proxy).
    pub clock_hz: f64,
    /// Per-task records in completion order.
    pub records: Vec<SimTaskRecord>,
    /// Per-core busy time, seconds.
    pub core_busy: Vec<f64>,
}

/// A histogram over execution time: `share[i]` is the fraction of total
/// task time spent in bin `i` of `edges` (the last bin is open-ended).
#[derive(Debug, Clone, Serialize)]
pub struct TimeHistogram {
    /// Bin lower edges.
    pub edges: Vec<f64>,
    /// Fraction of execution time per bin (sums to 1 if any time accrued).
    pub share: Vec<f64>,
}

impl SimResult {
    /// Mean core utilisation (busy time / (makespan × cores)).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.cores == 0 {
            return 0.0;
        }
        self.core_busy.iter().sum::<f64>() / (self.makespan * self.cores as f64)
    }

    /// Sum of task durations (the work one core would execute).
    pub fn total_task_time(&self) -> f64 {
        self.records.iter().map(SimTaskRecord::duration).sum()
    }

    /// Mean task duration, seconds.
    pub fn avg_task_time(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.total_task_time() / self.records.len() as f64
        }
    }

    /// Time-averaged number of concurrently running tasks.
    pub fn avg_concurrency(&self) -> f64 {
        self.sweep().0
    }

    /// Peak and time-averaged working set of concurrently running tasks.
    pub fn working_set(&self) -> (usize, f64) {
        let (_, avg_ws, peak_ws) = {
            let (c, w, p) = self.sweep_all();
            (c, w, p)
        };
        (peak_ws, avg_ws)
    }

    fn sweep(&self) -> (f64, f64) {
        let (c, w, _) = self.sweep_all();
        (c, w)
    }

    /// Event sweep returning (avg concurrency, avg working set, peak ws).
    fn sweep_all(&self) -> (f64, f64, usize) {
        if self.records.is_empty() || self.makespan <= 0.0 {
            return (0.0, 0.0, 0);
        }
        let mut events: Vec<(f64, i64, i64)> = Vec::with_capacity(self.records.len() * 2);
        for r in &self.records {
            events.push((r.start, 1, r.working_set_bytes as i64));
            events.push((r.end, -1, -(r.working_set_bytes as i64)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut conc, mut ws) = (0i64, 0i64);
        let (mut conc_int, mut ws_int) = (0.0f64, 0.0f64);
        let mut peak_ws = 0usize;
        let mut prev = events[0].0;
        for (t, dc, dw) in events {
            let dt = t - prev;
            conc_int += conc as f64 * dt;
            ws_int += ws as f64 * dt;
            conc += dc;
            ws += dw;
            peak_ws = peak_ws.max(ws.max(0) as usize);
            prev = t;
        }
        (conc_int / self.makespan, ws_int / self.makespan, peak_ws)
    }

    /// Execution-time histogram of per-task IPC (Fig. 7 left).
    pub fn ipc_histogram(&self, edges: &[f64]) -> TimeHistogram {
        self.histogram(edges, |r| r.ipc(self.clock_hz))
    }

    /// Execution-time histogram of per-task L3 MPKI (Fig. 7 right).
    pub fn mpki_histogram(&self, edges: &[f64]) -> TimeHistogram {
        self.histogram(edges, SimTaskRecord::mpki)
    }

    fn histogram(&self, edges: &[f64], metric: impl Fn(&SimTaskRecord) -> f64) -> TimeHistogram {
        assert!(!edges.is_empty(), "need at least one bin edge");
        let mut share = vec![0.0f64; edges.len()];
        let mut total = 0.0;
        for r in &self.records {
            let v = metric(r);
            // Last edge whose value is ≤ v.
            let mut bin = 0;
            for (i, &e) in edges.iter().enumerate() {
                if v >= e {
                    bin = i;
                }
            }
            share[bin] += r.duration();
            total += r.duration();
        }
        if total > 0.0 {
            for s in &mut share {
                *s /= total;
            }
        }
        TimeHistogram {
            edges: edges.to_vec(),
            share,
        }
    }

    /// Sum of memory traffic, bytes.
    pub fn total_miss_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.miss_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: usize, core: usize, start: f64, end: f64, instr: f64, miss: f64) -> SimTaskRecord {
        SimTaskRecord {
            task,
            label: "t",
            tag: 0,
            core,
            start,
            end,
            working_set_bytes: 1000,
            instructions: instr,
            miss_bytes: miss,
        }
    }

    fn result(records: Vec<SimTaskRecord>, cores: usize, makespan: f64) -> SimResult {
        let mut core_busy = vec![0.0; cores];
        for r in &records {
            core_busy[r.core] += r.duration();
        }
        SimResult {
            makespan,
            cores,
            clock_hz: 2.0e9,
            records,
            core_busy,
        }
    }

    #[test]
    fn ipc_and_mpki_formulas() {
        let r = rec(0, 0, 0.0, 1.0, 4.0e9, 64_000.0);
        assert!((r.ipc(2.0e9) - 2.0).abs() < 1e-12);
        // 1000 misses / 4e6 kilo-instructions = 0.00025 MPKI.
        assert!((r.mpki() - 0.00025).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_fully_busy_run() {
        let res = result(
            vec![rec(0, 0, 0.0, 2.0, 1.0, 0.0), rec(1, 1, 0.0, 2.0, 1.0, 0.0)],
            2,
            2.0,
        );
        assert!((res.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_shares_sum_to_one() {
        let res = result(
            vec![
                rec(0, 0, 0.0, 1.0, 1.0e9, 0.0), // IPC 0.5
                rec(1, 0, 1.0, 2.0, 3.0e9, 0.0), // IPC 1.5
            ],
            1,
            2.0,
        );
        let h = res.ipc_histogram(&[0.0, 1.0, 2.0]);
        let sum: f64 = h.share.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.share[0] - 0.5).abs() < 1e-12);
        assert!((h.share[1] - 0.5).abs() < 1e-12);
        assert_eq!(h.share[2], 0.0);
    }

    #[test]
    fn concurrency_sweep() {
        let res = result(
            vec![rec(0, 0, 0.0, 2.0, 1.0, 0.0), rec(1, 1, 1.0, 2.0, 1.0, 0.0)],
            2,
            2.0,
        );
        // 1 task for [0,1), 2 for [1,2): avg 1.5.
        assert!((res.avg_concurrency() - 1.5).abs() < 1e-12);
        let (peak, avg) = res.working_set();
        assert_eq!(peak, 2000);
        assert!((avg - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_is_safe() {
        let res = result(vec![], 1, 0.0);
        assert_eq!(res.utilization(), 0.0);
        assert_eq!(res.avg_concurrency(), 0.0);
        assert_eq!(res.avg_task_time(), 0.0);
    }
}
