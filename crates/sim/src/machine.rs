//! Simulated machine description.

use serde::{Deserialize, Serialize};

/// A multi-socket shared-memory machine.
///
/// Defaults model the paper's experimental platform (Table I): a
/// dual-socket Intel Xeon Platinum 8160 — 2 × 24 cores @ 2.1 GHz, 33 MB
/// shared L3 per socket, ~6-channel DDR4 per socket.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Machine {
    /// Number of sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Core clock in Hz (used for the IPC proxy).
    pub clock_hz: f64,
    /// Effective sequential kernel throughput per core, flop/s.
    ///
    /// This models *MKL-Sequential f32 GEMM throughput on RNN-shaped
    /// operands*, not peak: ~30 Gflop/s effective out of a 134 Gflop/s
    /// AVX-512 peak, reflecting skinny GEMMs and element-wise tails.
    /// Calibrated so the simulated per-task duration (~10 ms for the
    /// B=128/I=64/H=512 LSTM cell) matches the paper's measured 13 ms
    /// average task granularity (§IV-B).
    pub flops_per_core: f64,
    /// Memory bandwidth per socket, bytes/s.
    pub mem_bw_per_socket: f64,
    /// Shared L3 capacity per socket, bytes.
    pub l3_per_socket: usize,
    /// Multiplier on memory-traffic time when a task's producer ran on a
    /// different socket (NUMA remote-access penalty).
    pub numa_penalty: f64,
}

impl Machine {
    /// The paper's CPU platform (Table I).
    pub fn xeon_8160() -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 24,
            clock_hz: 2.1e9,
            flops_per_core: 30.0e9,
            mem_bw_per_socket: 100.0e9,
            l3_per_socket: 33 * 1024 * 1024,
            numa_penalty: 1.6,
        }
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket a core belongs to. Cores are numbered socket-major, so runs
    /// restricted to ≤ `cores_per_socket` cores stay on one socket — the
    /// paper pins ≤ 24-core runs to a single socket to avoid NUMA effects.
    pub fn socket_of(&self, core: usize) -> usize {
        (core / self.cores_per_socket).min(self.sockets - 1)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::xeon_8160()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_shape() {
        let m = Machine::xeon_8160();
        assert_eq!(m.total_cores(), 48);
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(23), 0);
        assert_eq!(m.socket_of(24), 1);
        assert_eq!(m.socket_of(47), 1);
    }

    #[test]
    fn socket_of_clamps() {
        let m = Machine::xeon_8160();
        assert_eq!(m.socket_of(200), 1);
    }
}
