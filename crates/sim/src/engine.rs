//! Event-driven task-graph replay.
//!
//! Greedy list scheduling: whenever a core is idle and a task is ready,
//! the task starts immediately — exactly the behaviour of the live
//! runtime's worker loop. The ready queue is the *same*
//! [`ReadySet`](bpar_runtime::scheduler::ReadySet) type the live runtime
//! uses, so FIFO vs locality-aware policies behave identically in
//! simulation and reality.

use crate::cost::{CostModel, Locality};
use crate::machine::Machine;
use crate::metrics::{SimResult, SimTaskRecord};
use bpar_runtime::graph::TaskGraph;
use bpar_runtime::scheduler::{ReadySet, SchedulerPolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hardware description.
    pub machine: Machine,
    /// Active core count (≤ `machine.total_cores()`).
    pub cores: usize,
    /// Ready-queue policy.
    pub policy: SchedulerPolicy,
    /// Cost-model coefficients.
    pub cost: CostModel,
    /// Rotate the idle-core scan origin between dispatches.
    ///
    /// With `false` (default) idle cores are considered in ascending id
    /// order, so narrow graphs pack onto socket 0 — equivalent to pinning
    /// the run to one socket, which the paper does manually for ≤24-core
    /// experiments. With `true` the scan origin rotates, modelling worker
    /// threads waking in arbitrary order across both sockets: narrow
    /// graphs then smear over the machine and pay NUMA penalties — the
    /// degradation Fig. 3 shows for small-`mbs` runs on 32/48 cores.
    pub rotate_scan: bool,
}

impl SimConfig {
    /// Paper-platform config with `cores` active cores and the
    /// locality-aware scheduler.
    pub fn xeon(cores: usize) -> Self {
        Self {
            machine: Machine::xeon_8160(),
            cores,
            policy: SchedulerPolicy::LocalityAware,
            cost: CostModel::default(),
            rotate_scan: false,
        }
    }

    /// Same config with a different policy.
    pub fn with_policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same config with a rotating idle-core scan (unpinned workers).
    pub fn with_rotating_scan(mut self, rotate: bool) -> Self {
        self.rotate_scan = rotate;
        self
    }
}

/// Totally ordered f64 key for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Mutable scheduling state, grouped so the dispatch step can borrow it
/// as a unit.
struct State {
    ready: ReadySet,
    idle: Vec<bool>,
    task_core: Vec<usize>,
    task_start: Vec<f64>,
    task_miss: Vec<f64>,
    active_per_socket: Vec<usize>,
    heap: BinaryHeap<Reverse<(Key, usize, usize)>>,
    /// Scan origin for rotating dispatch.
    scan_origin: usize,
}

/// Classifies input locality of `task` when run on `core`.
fn locality_of(
    graph: &TaskGraph,
    task_core: &[usize],
    machine: &Machine,
    task: usize,
    core: usize,
) -> Locality {
    let preds = graph.preds(task);
    if preds.is_empty() {
        Locality::Cold
    } else if preds.iter().any(|&p| task_core[p] == core) {
        Locality::SameCore
    } else if preds
        .iter()
        .any(|&p| machine.socket_of(task_core[p]) == machine.socket_of(core))
    {
        Locality::SameSocket
    } else {
        Locality::RemoteSocket
    }
}

/// Tries to start one ready task on the idle `core` at time `now`.
fn try_start(graph: &TaskGraph, cfg: &SimConfig, now: f64, st: &mut State, core: usize) -> bool {
    let machine = &cfg.machine;
    let Some(task) = st.ready.pop(core) else {
        return false;
    };
    let socket = machine.socket_of(core);
    let locality = locality_of(graph, &st.task_core, machine, task, core);
    let bw_share = machine.mem_bw_per_socket / (st.active_per_socket[socket] + 1) as f64;
    let node = graph.node(task);
    let mut dur = cfg.cost.duration(node, task, locality, bw_share, machine);
    if matches!(cfg.policy, SchedulerPolicy::WorkStealing) {
        // Swap the global-queue scheduling overhead for the deques'
        // contention-free ready-path cost. Applied as a correction so the
        // global-queue policies' arithmetic is untouched (bit-identical
        // paper-parity runs).
        dur += cfg.cost.deque_task_overhead - cfg.cost.per_task_overhead;
    }
    let mut miss = cfg.cost.miss_bytes(node, locality, machine);
    if locality == Locality::RemoteSocket {
        miss *= machine.numa_penalty;
    }

    st.idle[core] = false;
    st.task_core[task] = core;
    st.task_start[task] = now;
    st.task_miss[task] = miss;
    st.active_per_socket[socket] += 1;
    st.heap.push(Reverse((Key(now + dur), task, core)));
    true
}

/// Starts every ready task for which an idle core exists, at time `now`.
fn dispatch(graph: &TaskGraph, cfg: &SimConfig, now: f64, st: &mut State) {
    let n = st.idle.len();
    if cfg.rotate_scan {
        st.scan_origin = (st.scan_origin + 1) % n;
    }
    loop {
        let mut assigned = false;
        for i in 0..n {
            let core = (st.scan_origin + i) % n;
            if st.idle[core] && try_start(graph, cfg, now, st, core) {
                assigned = true;
            }
        }
        if !assigned {
            break;
        }
    }
}

/// Structural lints every graph must pass before simulation: no backward
/// edges (a task depending on a later submission), consistent
/// predecessor/successor mirrors, no duplicate edges.
///
/// These are exactly the invariants [`simulate`]'s greedy list scheduler
/// relies on — a backward edge or a pred/succ mismatch silently corrupts
/// the pending counters and shows up only as a deadlock assertion deep in
/// the run. Graphs built through [`TaskGraph`]'s dependency tracker
/// satisfy them by construction; hand-built graphs (tests, ablations) may
/// not. Content lints (dead writes, isolated tasks) are deliberately
/// *not* applied here: synthetic benchmark graphs legitimately contain
/// both.
pub fn preflight(graph: &TaskGraph) -> Vec<bpar_verify::Finding> {
    let view = bpar_verify::GraphView::from_graph(graph);
    bpar_verify::run_lints(&view, &bpar_verify::default_region_name)
        .into_iter()
        .filter(|f| {
            matches!(
                f.check.as_str(),
                "backward-edge" | "mirror-mismatch" | "duplicate-edge"
            )
        })
        .collect()
}

/// Replays `graph` on the simulated machine; returns per-task placements
/// and timings.
///
/// ```
/// use bpar_runtime::graph::{TaskGraph, TaskNode};
/// use bpar_runtime::RegionId;
/// use bpar_sim::{simulate, SimConfig};
///
/// // Two independent 30-Gflop tasks: two cores halve the makespan.
/// let mut g = TaskGraph::new();
/// g.add_task(TaskNode::new("a").flops(30_000_000_000), &[], &[RegionId(0)]);
/// g.add_task(TaskNode::new("b").flops(30_000_000_000), &[], &[RegionId(1)]);
/// let t1 = simulate(&g, &SimConfig::xeon(1)).makespan;
/// let t2 = simulate(&g, &SimConfig::xeon(2)).makespan;
/// assert!(t2 < 0.6 * t1);
/// ```
///
/// # Panics
/// Panics if `cfg.cores` is zero or exceeds the machine size, if the
/// graph fails the structural [`preflight`] lints, or if the graph
/// deadlocks (impossible for graphs built through [`TaskGraph`]).
pub fn simulate(graph: &TaskGraph, cfg: &SimConfig) -> SimResult {
    assert!(cfg.cores >= 1, "need at least one core");
    assert!(
        cfg.cores <= cfg.machine.total_cores(),
        "machine has only {} cores",
        cfg.machine.total_cores()
    );
    let issues = preflight(graph);
    assert!(
        issues.is_empty(),
        "graph fails structural preflight:\n{}",
        issues
            .iter()
            .map(|f| format!("  [{}] {}", f.check, f.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let n = graph.len();
    let machine = &cfg.machine;

    let mut pending: Vec<usize> = (0..n).map(|i| graph.preds(i).len()).collect();
    let mut st = State {
        ready: ReadySet::new(cfg.policy, cfg.cores),
        idle: vec![true; cfg.cores],
        task_core: vec![usize::MAX; n],
        task_start: vec![0.0; n],
        task_miss: vec![0.0; n],
        active_per_socket: vec![0usize; machine.sockets],
        heap: BinaryHeap::new(),
        scan_origin: 0,
    };
    for (i, &deps) in pending.iter().enumerate() {
        if deps == 0 {
            st.ready.push(i, None);
        }
    }

    let mut records: Vec<SimTaskRecord> = Vec::with_capacity(n);
    let mut core_busy = vec![0.0f64; cfg.cores];
    let mut now = 0.0f64;

    dispatch(graph, cfg, now, &mut st);

    while let Some(Reverse((Key(finish), task, core))) = st.heap.pop() {
        now = finish;
        let socket = machine.socket_of(core);
        st.active_per_socket[socket] -= 1;
        st.idle[core] = true;

        let node = graph.node(task);
        let start = st.task_start[task];
        records.push(SimTaskRecord {
            task,
            label: node.label,
            tag: node.tag,
            core,
            start,
            end: finish,
            working_set_bytes: node.working_set_bytes,
            instructions: cfg.cost.instructions(node),
            miss_bytes: st.task_miss[task],
        });
        core_busy[core] += finish - start;

        for &s in graph.succs(task) {
            pending[s] -= 1;
            if pending[s] == 0 {
                st.ready.push(s, Some(core));
            }
        }
        // Immediate-successor execution (work-stealing only, mirroring
        // the live runtime's direct handoff): the completing core claims
        // its next task — the successor it just released, sitting at the
        // bottom of its own deque — before the global dispatch scan lets
        // a lower-numbered idle core steal it cold.
        if st.ready.direct_handoff() {
            try_start(graph, cfg, now, &mut st, core);
        }
        dispatch(graph, cfg, now, &mut st);
    }
    assert_eq!(
        records.len(),
        n,
        "deadlock: {} of {n} tasks completed",
        records.len()
    );

    SimResult {
        makespan: now,
        cores: cfg.cores,
        clock_hz: machine.clock_hz,
        records,
        core_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpar_runtime::graph::{TaskGraph, TaskNode};
    use bpar_runtime::RegionId;

    fn chain(n: usize, flops: u64) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(
                TaskNode::new("t").flops(flops).working_set(1 << 16),
                &[RegionId(i as u64)],
                &[RegionId(i as u64 + 1)],
            );
        }
        g
    }

    fn independent(n: usize, flops: u64) -> TaskGraph {
        let mut g = TaskGraph::new();
        for i in 0..n {
            g.add_task(
                TaskNode::new("t").flops(flops).working_set(1 << 16),
                &[],
                &[RegionId(i as u64)],
            );
        }
        g
    }

    #[test]
    fn chain_does_not_benefit_from_cores() {
        let g = chain(20, 120_000_000);
        let t1 = simulate(&g, &SimConfig::xeon(1)).makespan;
        let t8 = simulate(&g, &SimConfig::xeon(8)).makespan;
        assert!((t1 / t8 - 1.0).abs() < 0.2, "t1 {t1} t8 {t8}");
    }

    #[test]
    fn independent_tasks_scale_nearly_linearly() {
        let g = independent(48, 120_000_000);
        let t1 = simulate(&g, &SimConfig::xeon(1)).makespan;
        let t8 = simulate(&g, &SimConfig::xeon(8)).makespan;
        let speedup = t1 / t8;
        assert!(speedup > 5.0, "speedup {speedup}");
        assert!(speedup <= 8.5, "speedup {speedup}");
    }

    #[test]
    fn busy_time_bounded_by_cores_times_makespan() {
        let g = independent(30, 50_000_000);
        let r = simulate(&g, &SimConfig::xeon(6));
        assert_eq!(r.records.len(), 30);
        let busy: f64 = r.core_busy.iter().sum();
        assert!(
            busy <= r.makespan * 6.0 + 1e-9,
            "busy {busy} makespan {}",
            r.makespan
        );
    }

    #[test]
    fn single_core_makespan_equals_total_busy_time() {
        let g = independent(10, 60_000_000);
        let r = simulate(&g, &SimConfig::xeon(1));
        let total: f64 = r.records.iter().map(|t| t.end - t.start).sum();
        assert!((total - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn start_times_respect_dependencies() {
        let g = chain(10, 50_000_000);
        let r = simulate(&g, &SimConfig::xeon(4));
        let mut end_of = [0.0f64; 10];
        for rec in &r.records {
            end_of[rec.task] = rec.end;
        }
        for rec in &r.records {
            for &p in g.preds(rec.task) {
                assert!(rec.start >= end_of[p] - 1e-12);
            }
        }
    }

    #[test]
    fn locality_aware_reduces_misses_on_chains() {
        // More chains than cores, with unequal task sizes so finish events
        // interleave: FIFO migrates chains across cores, the locality-aware
        // policy keeps each chain where its predecessor ran.
        let mut g = TaskGraph::new();
        for i in 0..10u64 {
            for c in 0..16u64 {
                g.add_task(
                    TaskNode::new("t")
                        .flops(5_000_000 + c * 1_700_000)
                        .working_set(2 << 20),
                    &[RegionId(c * 100 + i)],
                    &[RegionId(c * 100 + i + 1)],
                );
            }
        }
        let fifo = simulate(&g, &SimConfig::xeon(8).with_policy(SchedulerPolicy::Fifo));
        let loc = simulate(&g, &SimConfig::xeon(8));
        let miss = |r: &SimResult| r.records.iter().map(|t| t.miss_bytes).sum::<f64>();
        assert!(
            miss(&loc) < miss(&fifo),
            "locality {} vs fifo {}",
            miss(&loc),
            miss(&fifo)
        );
        // Locality trades a little load balance for cache reuse; on this
        // contrived imbalanced workload it must stay in the same ballpark
        // (the BRNN-shaped graphs in the experiment benches show the win).
        assert!(loc.makespan <= fifo.makespan * 1.3);
    }

    #[test]
    fn cross_socket_runs_pay_numa() {
        // 48 independent memory-heavy tasks: with 48 cores half run on the
        // remote socket relative to nothing (roots are Cold, no NUMA), so
        // instead build producer→consumer pairs pinned by locality.
        let mut g = TaskGraph::new();
        for i in 0..24u64 {
            g.add_task(
                TaskNode::new("p").flops(1_000_000).working_set(8 << 20),
                &[],
                &[RegionId(i)],
            );
        }
        for i in 0..24u64 {
            g.add_task(
                TaskNode::new("c").flops(1_000_000).working_set(8 << 20),
                &[RegionId(i)],
                &[RegionId(100 + i)],
            );
        }
        // FIFO on 48 cores scatters consumers across sockets; the run must
        // still complete with consistent records.
        let r = simulate(&g, &SimConfig::xeon(48).with_policy(SchedulerPolicy::Fifo));
        assert_eq!(r.records.len(), 48);
    }

    #[test]
    fn work_stealing_completes_and_respects_dependencies() {
        let g = chain(12, 40_000_000);
        let r = simulate(
            &g,
            &SimConfig::xeon(4).with_policy(SchedulerPolicy::WorkStealing),
        );
        assert_eq!(r.records.len(), 12);
        let mut end_of = [0.0f64; 12];
        for rec in &r.records {
            end_of[rec.task] = rec.end;
        }
        for rec in &r.records {
            for &p in g.preds(rec.task) {
                assert!(rec.start >= end_of[p] - 1e-12);
            }
        }
    }

    #[test]
    fn work_stealing_keeps_chains_home_like_locality() {
        // Same imbalanced multi-chain workload as the locality test: the
        // deque organisation homes each released task on its releasing
        // core, so work-stealing must also beat FIFO on cache misses.
        let mut g = TaskGraph::new();
        for i in 0..10u64 {
            for c in 0..16u64 {
                g.add_task(
                    TaskNode::new("t")
                        .flops(5_000_000 + c * 1_700_000)
                        .working_set(2 << 20),
                    &[RegionId(c * 100 + i)],
                    &[RegionId(c * 100 + i + 1)],
                );
            }
        }
        let fifo = simulate(&g, &SimConfig::xeon(8).with_policy(SchedulerPolicy::Fifo));
        let ws = simulate(
            &g,
            &SimConfig::xeon(8).with_policy(SchedulerPolicy::WorkStealing),
        );
        let miss = |r: &SimResult| r.records.iter().map(|t| t.miss_bytes).sum::<f64>();
        assert!(
            miss(&ws) < miss(&fifo),
            "work-stealing {} vs fifo {}",
            miss(&ws),
            miss(&fifo)
        );
        assert!(ws.makespan <= fifo.makespan * 1.3);
    }

    #[test]
    fn work_stealing_is_deterministic() {
        let g = independent(32, 60_000_000);
        let cfg = SimConfig::xeon(6).with_policy(SchedulerPolicy::WorkStealing);
        let a = simulate(&g, &cfg);
        let b = simulate(&g, &cfg);
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.core, y.core);
            assert_eq!(x.end, y.end);
        }
    }

    #[test]
    fn deterministic_replay() {
        let g = independent(16, 80_000_000);
        let a = simulate(&g, &SimConfig::xeon(4));
        let b = simulate(&g, &SimConfig::xeon(4));
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.core, y.core);
            assert_eq!(x.end, y.end);
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        simulate(&independent(1, 1), &SimConfig::xeon(0));
    }

    #[test]
    fn tracker_built_graphs_pass_preflight() {
        assert!(preflight(&chain(20, 1)).is_empty());
        assert!(preflight(&independent(8, 1)).is_empty());
    }
}
