//! Chain-vs-scan crossover: where parallel-scan recurrence execution
//! starts beating the timestep chain.
//!
//! Two independent estimators over the *same* generated graphs:
//!
//! * [`predict`] — an analytic Brent bound. Each task costs
//!   `per_task_overhead + flops / flops_per_core`; a graph then takes at
//!   least its critical path and at least `work / cores`, and a greedy
//!   scheduler finishes within the sum of the two. The bound ignores
//!   everything the event simulation models — queueing, locality
//!   penalties, bandwidth sharing, duration jitter — which is the point:
//!   it is a closed-form prediction, not a replay.
//! * [`replay`] — the full discrete-event simulation ([`simulate`]) of
//!   the same graphs under the live scheduler policy.
//!
//! The `scan_crossover` bench gates the two curves against each other:
//! if the replayed crossover drifts more than 2× from the Brent
//! prediction, either the cost annotations or the scan graph shape are
//! wrong.
//!
//! Why a crossover exists at all: a chain exposes only `2·layers·mbs`
//! parallel strands, so once cores exceed that, extra cores idle. The
//! scan splits each strand into chunks, but pays a combine tree, a
//! fix-up sweep and (for training) a serialized gradient accumulation —
//! fixed costs that only amortize once the sequence is long enough.

use crate::engine::{simulate, SimConfig};
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::scanplan::RecurrenceStrategy;
use serde::Serialize;

/// Minimum timesteps per scan chunk. Below this the chunk-local sweep is
/// too short to amortize its own dispatch, so [`chunks_for`] prefers
/// fewer, longer chunks (degenerating to the chain for tiny sequences).
pub const MIN_CHUNK_LEN: usize = 4;

/// Chunk-count heuristic shared by the predictor and the live bench:
/// two chunks per core (so the fix-up wave overlaps the next chunk's
/// local sweep), capped so chunks never drop under [`MIN_CHUNK_LEN`]
/// timesteps. A result of 1 means "don't scan" —
/// [`RecurrenceStrategy::effective`] folds it back to the chain.
pub fn chunks_for(seq_len: usize, cores: usize) -> usize {
    (2 * cores).min(seq_len / MIN_CHUNK_LEN).max(1)
}

/// Chain and scan estimates for one sequence length.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CrossoverPoint {
    pub seq_len: usize,
    /// Chunk count the scan ran with ([`chunks_for`]).
    pub chunks: usize,
    /// Chain-strategy batch time, seconds.
    pub chain_s: f64,
    /// Scan-strategy batch time, seconds.
    pub scan_s: f64,
    /// `chain_s / scan_s` — above 1.0 the scan wins.
    pub speedup: f64,
}

/// A swept chain-vs-scan curve and its crossover point.
#[derive(Debug, Clone, Serialize)]
pub struct CrossoverCurve {
    pub cores: usize,
    pub points: Vec<CrossoverPoint>,
    /// Interpolated sequence length where the scan starts winning *and
    /// keeps winning* for the rest of the sweep (`None` if it never
    /// does). See [`crossover_of`].
    pub crossover_seq: Option<f64>,
}

/// The chain/scan spec pair evaluated at one sequence length.
fn specs_at(base: &GraphSpec, seq_len: usize, cores: usize) -> (GraphSpec, GraphSpec, usize) {
    let mut chain = *base;
    chain.config.seq_len = seq_len;
    chain.recurrence = RecurrenceStrategy::Chain;
    let chunks = chunks_for(seq_len, cores);
    let mut scan = chain;
    scan.recurrence = RecurrenceStrategy::Scan { chunks };
    (chain, scan, chunks)
}

fn curve(
    base: &GraphSpec,
    seq_lens: &[usize],
    cfg: &SimConfig,
    eval: impl Fn(&GraphSpec) -> f64,
) -> CrossoverCurve {
    let points: Vec<CrossoverPoint> = seq_lens
        .iter()
        .map(|&seq_len| {
            let (chain, scan, chunks) = specs_at(base, seq_len, cfg.cores);
            let chain_s = eval(&chain);
            let scan_s = eval(&scan);
            CrossoverPoint {
                seq_len,
                chunks,
                chain_s,
                scan_s,
                speedup: chain_s / scan_s,
            }
        })
        .collect();
    CrossoverCurve {
        cores: cfg.cores,
        crossover_seq: crossover_of(&points),
        points,
    }
}

/// Analytic Brent-bound curve: per-task time is overhead plus roofline
/// compute; a graph takes `max(critical path, work / cores)`.
pub fn predict(base: &GraphSpec, seq_lens: &[usize], cfg: &SimConfig) -> CrossoverCurve {
    let task_s = |n: &bpar_runtime::graph::TaskNode| {
        cfg.cost.per_task_overhead + n.flops as f64 / cfg.machine.flops_per_core
    };
    curve(base, seq_lens, cfg, |spec| {
        let g = build_graph(spec);
        let cp = g.critical_path(task_s);
        let work = g.total_work(task_s);
        cp.max(work / cfg.cores as f64)
    })
}

/// Discrete-event replay curve: the same graphs through [`simulate`]
/// under `cfg`'s scheduler policy and full cost model.
pub fn replay(base: &GraphSpec, seq_lens: &[usize], cfg: &SimConfig) -> CrossoverCurve {
    curve(base, seq_lens, cfg, |spec| {
        simulate(&build_graph(spec), cfg).makespan
    })
}

/// The sequence length where `speedup` crosses 1.0 for good.
///
/// Scans for the last run of consecutive scan wins that extends to the
/// end of the sweep; the crossover is log-log interpolated between the
/// last losing point and the first point of that run (or the first swept
/// length if the scan never loses). Transient early wins that later
/// revert do not count.
pub fn crossover_of(points: &[CrossoverPoint]) -> Option<f64> {
    let mut start = None;
    for (i, p) in points.iter().enumerate() {
        if p.speedup > 1.0 {
            start.get_or_insert(i);
        } else {
            start = None;
        }
    }
    let i = start?;
    if i == 0 {
        return Some(points[0].seq_len as f64);
    }
    let (a, b) = (&points[i - 1], &points[i]);
    let (la, lb) = (a.speedup.ln(), b.speedup.ln());
    let (xa, xb) = ((a.seq_len as f64).ln(), (b.seq_len as f64).ln());
    let frac = if (lb - la).abs() < 1e-12 {
        0.0
    } else {
        -la / (lb - la)
    };
    Some((xa + frac * (xb - xa)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpar_core::cell::CellKind;
    use bpar_core::model::BrnnConfig;

    /// A single-layer diagonal-recurrent model: the workload class the
    /// scan targets (one sequence, no data parallelism to hide behind).
    fn linear_spec(training: bool) -> GraphSpec {
        let config = BrnnConfig {
            cell: CellKind::Linear,
            layers: 1,
            seq_len: 64, // overridden per point
            input_size: 128,
            hidden_size: 128,
            output_size: 8,
            ..BrnnConfig::default()
        };
        if training {
            GraphSpec::training(config, 16)
        } else {
            GraphSpec::inference(config, 16)
        }
    }

    #[test]
    fn chunk_heuristic_bounds() {
        for cores in [1, 8, 48] {
            for seq in [1, 4, 63, 64, 1024, 16384] {
                let c = chunks_for(seq, cores);
                assert!(c >= 1 && c <= 2 * cores, "seq={seq} cores={cores}: {c}");
                if c >= 2 {
                    assert!(seq / c >= MIN_CHUNK_LEN, "seq={seq} cores={cores}: {c}");
                }
            }
        }
        assert_eq!(chunks_for(4, 8), 1); // too short: stay on the chain
        assert_eq!(chunks_for(16384, 8), 16);
    }

    #[test]
    fn too_short_to_chunk_means_an_exact_tie() {
        // chunks_for(4, 8) == 1, which `effective` folds back to Chain:
        // both strategies build the identical graph, so the replayed
        // makespans are bit-equal — the scan request costs nothing.
        let c = replay(&linear_spec(false), &[4], &SimConfig::xeon(8));
        assert_eq!(c.points[0].chain_s, c.points[0].scan_s);
        assert!(c.crossover_seq.is_none());
    }

    #[test]
    fn scan_wins_long_inference_at_eight_cores() {
        let c = replay(&linear_spec(false), &[4096, 16384], &SimConfig::xeon(8));
        for p in &c.points {
            assert!(p.speedup > 1.0, "T={}: speedup {:.2}", p.seq_len, p.speedup);
        }
        // A single-layer chain keeps at most 2 of 8 cores busy; once the
        // tree overhead is amortized the scan should be *well* clear of
        // parity, not scraping past it.
        assert!(
            c.points[1].speedup > 2.0,
            "16k speedup {:.2}",
            c.points[1].speedup
        );
    }

    #[test]
    fn scan_still_wins_long_training_despite_the_serial_grad_chain() {
        // bscan_grad tasks are serialized by the gradient accumulator,
        // so training keeps T·bwd_flops on the critical path — the win
        // is smaller than inference but must not vanish.
        let c = replay(&linear_spec(true), &[16384], &SimConfig::xeon(8));
        assert!(
            c.points[0].speedup > 1.0,
            "speedup {:.2}",
            c.points[0].speedup
        );
    }

    #[test]
    fn no_scan_win_when_the_chain_already_saturates_the_cores() {
        // Four replicas of a compute-heavy cell = 8 chain strands on 8
        // cores, each cache-warm on its own core. The scan has no idle
        // cores to recruit and its combine/fix-up traffic crosses
        // cores, so the replay must show it losing — the strategy
        // boundary is core headroom, not sequence length.
        let config = BrnnConfig {
            cell: CellKind::Linear,
            layers: 1,
            seq_len: 64,
            input_size: 512,
            hidden_size: 512,
            output_size: 8,
            ..BrnnConfig::default()
        };
        let spec = GraphSpec::inference(config, 64).with_mbs(4);
        let c = replay(&spec, &[64, 512], &SimConfig::xeon(8));
        for p in &c.points {
            assert!(p.speedup < 1.0, "T={}: speedup {:.2}", p.seq_len, p.speedup);
        }
        assert!(c.crossover_seq.is_none());
    }

    #[test]
    fn replayed_crossover_lands_within_2x_of_the_brent_prediction() {
        let sweep = [32, 64, 128, 256, 512, 1024, 2048, 4096];
        let cfg = SimConfig::xeon(8);
        let spec = linear_spec(false);
        let predicted = predict(&spec, &sweep, &cfg)
            .crossover_seq
            .expect("prediction must cross");
        let replayed = replay(&spec, &sweep, &cfg)
            .crossover_seq
            .expect("replay must cross");
        let ratio = (predicted / replayed).max(replayed / predicted);
        assert!(
            ratio <= 2.0,
            "predicted {predicted:.0} vs replayed {replayed:.0} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn crossover_interpolation_ignores_transient_wins() {
        let p = |seq_len: usize, speedup: f64| CrossoverPoint {
            seq_len,
            chunks: 8,
            chain_s: speedup,
            scan_s: 1.0,
            speedup,
        };
        // Transient win at 64 reverts at 128: only the final run counts.
        let pts = [
            p(64, 1.2),
            p(128, 0.8),
            p(256, 1.0 / 1.25),
            p(512, 1.25),
            p(1024, 2.0),
        ];
        let x = crossover_of(&pts).unwrap();
        // Log-log interpolation between 256 (speedup 0.8) and 512
        // (speedup 1.25) crosses 1.0 exactly halfway in log space.
        let expected = (256.0f64 * 512.0).sqrt();
        assert!((x - expected).abs() < 1e-6, "{x} vs {expected}");
        // Never crossing → None; winning everywhere → first point.
        assert!(crossover_of(&pts[1..3]).is_none());
        assert_eq!(crossover_of(&[p(64, 1.1), p(128, 1.2)]), Some(64.0));
    }
}
