//! Per-task duration model.
//!
//! A task's simulated duration combines a compute term and a memory term:
//!
//! ```text
//! t = overhead + flops / flops_per_core + miss_bytes / bw_share
//! ```
//!
//! * `miss_bytes` starts from the task's working set and is discounted by
//!   *locality*: if the task runs on the core that produced its inputs the
//!   producer's output is still in the private caches; on the same socket
//!   it is still in the shared L3. This is the mechanism behind the
//!   paper's Fig. 7 (locality-aware scheduling cuts L3 MPKI and lifts
//!   IPC).
//! * A producer on the *other* socket adds the NUMA penalty — the
//!   mechanism behind the degradation of small-`mbs` configurations at 32
//!   and 48 cores in Fig. 3.
//! * `bw_share` divides socket bandwidth among the tasks concurrently
//!   running on that socket, modelling the bandwidth contention that makes
//!   large-`mbs` configurations sub-linear.

use crate::machine::Machine;
use bpar_runtime::graph::TaskNode;
use serde::{Deserialize, Serialize};

/// Where a task's inputs were produced, relative to the core that will run
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Some producer ran on the same core (L2-warm).
    SameCore,
    /// Some producer ran on the same socket (L3-warm).
    SameSocket,
    /// All producers ran on the other socket (cold + NUMA).
    RemoteSocket,
    /// No producers (root task, cold local memory).
    Cold,
}

/// Tunable cost-model coefficients.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-task runtime overhead (creation + scheduling +
    /// dependency release), seconds. The paper measures B-Par overhead at
    /// under 10% of task time; 30 µs against multi-ms tasks satisfies that.
    ///
    /// This is the *global-queue* figure: every ready-path operation takes
    /// the one runtime lock, so dispatch serializes behind it. Applies to
    /// the Fifo / LocalityAware / Adversarial policies.
    pub per_task_overhead: f64,
    /// Per-task overhead for the work-stealing deque scheduler, seconds.
    ///
    /// Per-worker deques give each worker a private, contention-free
    /// ready path (pushes and pops touch only the owner's deque; steals
    /// are rare at steady state, and direct handoff skips the queue
    /// entirely), which is the headline task-management saving of the
    /// post-paper task-runtime synchronization work DESIGN.md §13 cites.
    /// The global-queue policies keep [`CostModel::per_task_overhead`]
    /// unchanged, so paper-parity simulations are bit-identical.
    pub deque_task_overhead: f64,
    /// Fraction of the working set that must still come from memory when
    /// the producer ran on the same core.
    pub same_core_miss: f64,
    /// Fraction when the producer ran on the same socket (L3 hit for the
    /// producer's output, misses for the rest).
    pub same_socket_miss: f64,
    /// Fraction when inputs are cold or remote.
    pub cold_miss: f64,
    /// Multiplier on compute time when inputs are L3-warm but not
    /// L2-warm. Dense kernels run measurably slower on cold data (the
    /// prefetcher and packing buffers start cold), which is the mechanism
    /// that turns the locality-aware scheduler's L3-MPKI reduction into
    /// the ~20% batch-time reduction of Fig. 7.
    pub same_socket_compute_penalty: f64,
    /// Multiplier on compute time when inputs are cold or remote.
    pub cold_compute_penalty: f64,
    /// Relative per-task duration jitter (deterministic, hash-based).
    ///
    /// Real kernel invocations vary by a few percent (TLB state, prefetch
    /// luck, frequency transitions); perfectly uniform durations would
    /// lock the FIFO scheduler into an artificial cyclic schedule that
    /// never migrates chains.
    pub jitter: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            per_task_overhead: 30e-6,
            deque_task_overhead: 10e-6,
            same_core_miss: 0.35,
            same_socket_miss: 0.55,
            cold_miss: 1.0,
            same_socket_compute_penalty: 1.22,
            cold_compute_penalty: 1.45,
            jitter: 0.08,
        }
    }
}

/// Deterministic hash of a task id into `[-1, 1]`.
fn jitter_of(task: usize) -> f64 {
    let mut x = task as u64 ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

impl CostModel {
    /// Memory traffic in bytes for a task under the given locality.
    pub fn miss_bytes(&self, node: &TaskNode, locality: Locality, machine: &Machine) -> f64 {
        let ws = node.working_set_bytes as f64;
        let base = match locality {
            Locality::SameCore => self.same_core_miss,
            Locality::SameSocket => self.same_socket_miss,
            Locality::RemoteSocket | Locality::Cold => self.cold_miss,
        };
        // A working set far larger than the L3 cannot profit fully from
        // locality: cap the discount so at most the L3-sized portion of
        // the footprint is reused.
        let l3 = machine.l3_per_socket as f64;
        let reusable = (l3 / ws.max(1.0)).min(1.0);
        let miss_frac = base + (1.0 - base) * (1.0 - reusable);
        ws * miss_frac.min(1.0)
    }

    /// Task duration in seconds.
    ///
    /// * `task_id` — seeds the deterministic duration jitter,
    /// * `locality` — input placement relative to the executing core,
    /// * `bw_share` — bytes/s of socket bandwidth available to this task.
    pub fn duration(
        &self,
        node: &TaskNode,
        task_id: usize,
        locality: Locality,
        bw_share: f64,
        machine: &Machine,
    ) -> f64 {
        let penalty = match locality {
            Locality::SameCore => 1.0,
            Locality::SameSocket => self.same_socket_compute_penalty,
            Locality::Cold | Locality::RemoteSocket => self.cold_compute_penalty,
        };
        let compute = node.flops as f64 / machine.flops_per_core * penalty;
        let mut mem_bytes = self.miss_bytes(node, locality, machine);
        if locality == Locality::RemoteSocket {
            mem_bytes *= machine.numa_penalty;
        }
        let memory = mem_bytes / bw_share.max(1.0);
        // Compute and memory partially overlap on real hardware; take the
        // bound of whichever dominates plus a fraction of the other.
        let overlap = compute.max(memory) + 0.3 * compute.min(memory);
        let wiggle = 1.0 + self.jitter * jitter_of(task_id);
        self.per_task_overhead + overlap * wiggle
    }

    /// Instruction-count proxy for the IPC metric.
    ///
    /// Dense f32 kernels on AVX-512 retire ~8 flops per instruction on
    /// average (16-wide FMAs diluted by loads, address arithmetic and the
    /// element-wise tail), plus bookkeeping proportional to bytes moved.
    /// With this scale a cache-warm GEMM task lands at
    /// `30 Gflop/s ÷ 8 ÷ 2.1 GHz ≈ 1.8 IPC` — inside the paper's hot
    /// 1.5–2.0 bin — and cold tasks fall into the lower bins.
    pub fn instructions(&self, node: &TaskNode) -> f64 {
        node.flops as f64 / 8.0 + node.working_set_bytes as f64 / 64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(flops: u64, ws: usize) -> TaskNode {
        TaskNode::new("t").flops(flops).working_set(ws)
    }

    #[test]
    fn locality_orders_durations() {
        let m = Machine::xeon_8160();
        let c = CostModel::default();
        let n = node(1_000_000, 4 << 20);
        let bw = 4e9;
        let same_core = c.duration(&n, 0, Locality::SameCore, bw, &m);
        let same_socket = c.duration(&n, 0, Locality::SameSocket, bw, &m);
        let cold = c.duration(&n, 0, Locality::Cold, bw, &m);
        let remote = c.duration(&n, 0, Locality::RemoteSocket, bw, &m);
        assert!(same_core < same_socket, "{same_core} {same_socket}");
        assert!(same_socket < cold, "{same_socket} {cold}");
        assert!(cold < remote, "{cold} {remote}");
    }

    #[test]
    fn giant_working_sets_limit_locality_benefit() {
        let m = Machine::xeon_8160();
        let c = CostModel::default();
        // 500 MB working set: L3 covers only ~6%, so locality saves little.
        let n = node(0, 500 << 20);
        let warm = c.miss_bytes(&n, Locality::SameCore, &m);
        let cold = c.miss_bytes(&n, Locality::Cold, &m);
        assert!(warm / cold > 0.9, "warm {warm} cold {cold}");
        // Small working set: locality saves the full discount.
        let n = node(0, 1 << 20);
        let warm = c.miss_bytes(&n, Locality::SameCore, &m);
        let cold = c.miss_bytes(&n, Locality::Cold, &m);
        assert!(warm / cold < 0.45);
    }

    #[test]
    fn bandwidth_share_matters_for_memory_bound_tasks() {
        let m = Machine::xeon_8160();
        let c = CostModel::default();
        let n = node(1000, 64 << 20); // memory-bound
        let alone = c.duration(&n, 0, Locality::Cold, m.mem_bw_per_socket, &m);
        let crowded = c.duration(&n, 0, Locality::Cold, m.mem_bw_per_socket / 24.0, &m);
        assert!(crowded > 10.0 * alone);
    }

    #[test]
    fn compute_bound_tasks_track_flops() {
        let m = Machine::xeon_8160();
        let c = CostModel {
            jitter: 0.0,
            ..CostModel::default()
        };
        let n1 = node(30_000_000_000, 1024);
        let n2 = node(60_000_000_000, 1024);
        // SameCore locality: no cold-compute penalty.
        let d1 = c.duration(&n1, 0, Locality::SameCore, 4e9, &m);
        let d2 = c.duration(&n2, 0, Locality::SameCore, 4e9, &m);
        assert!((d2 / d1 - 2.0).abs() < 0.05);
        // 30 Gflop at 30 Gflop/s ≈ 1 s.
        assert!((d1 - 1.0).abs() < 0.05, "{d1}");
    }

    #[test]
    fn overhead_dominates_empty_tasks() {
        let m = Machine::xeon_8160();
        let c = CostModel::default();
        let d = c.duration(&node(0, 0), 0, Locality::Cold, 4e9, &m);
        assert!((d - c.per_task_overhead).abs() < 1e-12);
    }
}
