//! Simulation of real BRNN task graphs: checks the paper's qualitative
//! claims emerge from the machine model.
//!
//! Structural note (visible in Fig. 1): in a bidirectional layer the
//! first merge that layer `l+1` needs becomes ready only once *both*
//! directions of layer `l` have completed their full sweep, so layers
//! cannot pipeline. B-Par's model parallelism therefore exposes a width
//! of ~2 per replica (the two directions) plus merge tasks, and data
//! parallelism multiplies it by `mbs` — which is exactly why the paper's
//! best configurations combine both (mbs:8 on 48 cores), why B-Par is
//! ~2× B-Seq at the same `mbs` in Fig. 4 (0.44 s vs 0.89 s), and why the
//! average concurrency numbers of §IV-B are 16 (barrier-free, mbs:6)
//! vs 6 (per-layer barriers serialize the directions).

use bpar_core::cell::CellKind;
use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig};

/// Table III's 256/256/128/100 6-layer BLSTM.
fn table3_config() -> BrnnConfig {
    BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 256,
        hidden_size: 256,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    }
}

#[test]
fn absolute_batch_time_lands_near_table3() {
    // Paper: B-Par trains this batch in 932 ms on 48 cores (the best
    // configurations use mbs:8). The simulated time must land in the same
    // ballpark — we reproduce shapes, not microseconds.
    let spec = GraphSpec::training(table3_config(), 128).with_mbs(8);
    let g = build_graph(&spec);
    let r = simulate(&g, &SimConfig::xeon(48));
    assert!(
        (0.3..3.0).contains(&r.makespan),
        "simulated batch time {:.3}s should be near the paper's 0.93s",
        r.makespan
    );
}

#[test]
fn bpar_scales_with_cores() {
    let spec = GraphSpec::training(table3_config(), 128).with_mbs(8);
    let g = build_graph(&spec);
    let t1 = simulate(&g, &SimConfig::xeon(1)).makespan;
    let t8 = simulate(&g, &SimConfig::xeon(8)).makespan;
    let t24 = simulate(&g, &SimConfig::xeon(24)).makespan;
    // Width is ~2×mbs = 16: by 8 cores speedup should be close to 8×, and
    // 24 cores keep helping.
    assert!(t1 / t8 > 5.0, "8-core speedup too low: {}", t1 / t8);
    assert!(t24 < t8, "should keep scaling to 24 cores");
    assert!(t1 / t24 > 10.0, "24-core speedup too low: {}", t1 / t24);
}

#[test]
fn barrier_free_beats_framework_barriers_at_scale() {
    let cfg = table3_config();
    let free = build_graph(&GraphSpec::training(cfg, 128));
    let barred = build_graph(&GraphSpec::training(cfg, 128).with_barriers(true));
    // On one core the two schedules cost the same work.
    let f1 = simulate(&free, &SimConfig::xeon(1)).makespan;
    let b1 = simulate(&barred, &SimConfig::xeon(1)).makespan;
    assert!((f1 / b1 - 1.0).abs() < 0.05, "1-core: {f1} vs {b1}");
    // On many cores, serializing the directions costs ~2×: this is the
    // gap the paper attributes to per-layer barriers (K-CPU ≈ 1.8× B-Par
    // in Table III).
    let f24 = simulate(&free, &SimConfig::xeon(24)).makespan;
    let b24 = simulate(&barred, &SimConfig::xeon(24)).makespan;
    let gap = b24 / f24;
    assert!(
        (1.5..2.6).contains(&gap),
        "barrier gap {gap} (free {f24}, barred {b24})"
    );
}

#[test]
fn data_parallelism_extends_scaling() {
    // mbs:2 exposes width ~4 and stops scaling early; mbs:12 keeps
    // gaining well past 16 cores — the shape of Fig. 3.
    let cfg = BrnnConfig {
        layers: 8,
        ..table3_config()
    };
    let g2 = build_graph(&GraphSpec::training(cfg, 120).with_mbs(2));
    let g12 = build_graph(&GraphSpec::training(cfg, 120).with_mbs(12));
    let m2_16 = simulate(&g2, &SimConfig::xeon(16)).makespan;
    let m2_32 = simulate(&g2, &SimConfig::xeon(32)).makespan;
    let m12_16 = simulate(&g12, &SimConfig::xeon(16)).makespan;
    let m12_32 = simulate(&g12, &SimConfig::xeon(32)).makespan;
    let gain2 = m2_16 / m2_32;
    let gain12 = m12_16 / m12_32;
    assert!(
        gain12 > gain2 + 0.15,
        "mbs12 gain {gain12} vs mbs2 gain {gain2}"
    );
    assert!(
        m12_32 < m2_32,
        "mbs12 should be faster outright at 32 cores"
    );
}

#[test]
fn locality_aware_beats_fifo_on_brnn_training() {
    // The Fig. 7 experiment shape: more replicas than cores, so the FIFO
    // global queue migrates direction-chains across cores while the
    // locality-aware policy keeps each chain where its data is warm.
    let cfg = BrnnConfig {
        layers: 8,
        ..table3_config()
    };
    let g = build_graph(&GraphSpec::training(cfg, 128).with_mbs(8));
    let loc = simulate(&g, &SimConfig::xeon(8));
    let fifo = simulate(&g, &SimConfig::xeon(8).with_policy(SchedulerPolicy::Fifo));
    assert!(
        loc.total_miss_bytes() < fifo.total_miss_bytes() * 0.95,
        "locality should cut memory traffic: {} vs {}",
        loc.total_miss_bytes(),
        fifo.total_miss_bytes()
    );
    assert!(
        loc.makespan < fifo.makespan * 1.02,
        "locality batch time {} should not lose to oblivious {}",
        loc.makespan,
        fifo.makespan
    );
}

#[test]
fn removing_barriers_raises_concurrency_and_working_set() {
    // §IV-B memory consumption: barrier-free execution keeps more tasks
    // in flight (paper: avg 16 vs 6 at mbs:6) and therefore a larger
    // aggregate working set (75.36 MB vs 28.26 MB).
    let cfg = BrnnConfig {
        layers: 8,
        ..table3_config()
    };
    let spec = GraphSpec::training(cfg, 126).with_mbs(6);
    let free = simulate(&build_graph(&spec), &SimConfig::xeon(48));
    let barred = simulate(
        &build_graph(&spec.with_barriers(true)),
        &SimConfig::xeon(48),
    );
    let cf = free.avg_concurrency();
    let cb = barred.avg_concurrency();
    assert!(cf > 1.5 * cb, "concurrency {cf} vs {cb}");
    assert!(
        (8.0..30.0).contains(&cf),
        "barrier-free avg tasks {cf} (paper: 16)"
    );
    assert!(
        (3.0..12.0).contains(&cb),
        "barriered avg tasks {cb} (paper: 6)"
    );
    let (_, free_ws) = free.working_set();
    let (_, barred_ws) = barred.working_set();
    assert!(
        free_ws > 1.5 * barred_ws,
        "working set {free_ws} vs {barred_ws}"
    );
}

#[test]
fn inference_graph_is_cheaper_than_training() {
    let cfg = table3_config();
    let inf = build_graph(&GraphSpec::inference(cfg, 128));
    let trn = build_graph(&GraphSpec::training(cfg, 128));
    let ti = simulate(&inf, &SimConfig::xeon(24)).makespan;
    let tt = simulate(&trn, &SimConfig::xeon(24)).makespan;
    assert!(ti < tt / 2.0, "inference {ti} vs training {tt}");
}

#[test]
fn task_granularity_statistics_are_plausible() {
    // §IV-B: with B=128, I=64, H=512 the average LSTM task takes ~13 ms
    // and overheads stay an order of magnitude below task time.
    let cfg = BrnnConfig {
        input_size: 64,
        hidden_size: 512,
        ..table3_config()
    };
    let g = build_graph(&GraphSpec::training(cfg, 128));
    let r = simulate(&g, &SimConfig::xeon(24));
    let avg_ms = r.avg_task_time() * 1e3;
    assert!(
        (3.0..40.0).contains(&avg_ms),
        "avg task time {avg_ms} ms should be near the paper's 13 ms"
    );
    // Overhead per task (30 µs) is far below the average task time.
    assert!(avg_ms * 1e-3 > 10.0 * 30e-6);
}
