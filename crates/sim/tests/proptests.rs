//! Property-based tests of the discrete-event engine on random DAGs.

use bpar_runtime::graph::{TaskGraph, TaskNode};
use bpar_runtime::{RegionId, SchedulerPolicy};
use bpar_sim::{simulate, SimConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomTask {
    ins: Vec<u64>,
    outs: Vec<u64>,
    flops: u64,
    ws: usize,
}

fn random_graph() -> impl Strategy<Value = Vec<RandomTask>> {
    let task = (
        proptest::collection::vec(0u64..8, 0..3),
        proptest::collection::vec(0u64..8, 0..2),
        1_000_000u64..200_000_000,
        0usize..(8 << 20),
    )
        .prop_map(|(ins, outs, flops, ws)| RandomTask {
            ins,
            outs,
            flops,
            ws,
        });
    proptest::collection::vec(task, 1..80)
}

fn build(tasks: &[RandomTask]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for t in tasks {
        let ins: Vec<RegionId> = t.ins.iter().map(|&r| RegionId(r)).collect();
        let outs: Vec<RegionId> = t.outs.iter().map(|&r| RegionId(r)).collect();
        g.add_task(
            TaskNode::new("t").flops(t.flops).working_set(t.ws),
            &ins,
            &outs,
        );
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conservation_laws_hold_on_random_graphs(
        tasks in random_graph(),
        cores in 1usize..16,
        fifo in any::<bool>(),
    ) {
        let g = build(&tasks);
        let policy = if fifo { SchedulerPolicy::Fifo } else { SchedulerPolicy::LocalityAware };
        let r = simulate(&g, &SimConfig::xeon(cores).with_policy(policy));

        // Every task completes exactly once.
        prop_assert_eq!(r.records.len(), g.len());
        let mut seen = vec![false; g.len()];
        for rec in &r.records {
            prop_assert!(!seen[rec.task], "task {} completed twice", rec.task);
            seen[rec.task] = true;
        }

        // Dependencies respected.
        let mut end_of = vec![0.0f64; g.len()];
        for rec in &r.records {
            end_of[rec.task] = rec.end;
        }
        for rec in &r.records {
            for &p in g.preds(rec.task) {
                prop_assert!(rec.start >= end_of[p] - 1e-12);
            }
        }

        // Work bounds: makespan between work/cores and total work (+overheads).
        let total: f64 = r.records.iter().map(|t| t.end - t.start).sum();
        prop_assert!(r.makespan >= total / cores as f64 - 1e-9);
        prop_assert!(r.makespan <= total + 1e-9);

        // A core never runs two tasks at once.
        let mut by_core: Vec<Vec<(f64, f64)>> = vec![Vec::new(); cores];
        for rec in &r.records {
            by_core[rec.core].push((rec.start, rec.end));
        }
        for spans in &mut by_core {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[1].0 >= w[0].1 - 1e-12, "core overlap: {:?}", w);
            }
        }
    }

    #[test]
    fn single_core_is_work_conserving(tasks in random_graph()) {
        let g = build(&tasks);
        let r = simulate(&g, &SimConfig::xeon(1));
        let total: f64 = r.records.iter().map(|t| t.end - t.start).sum();
        // On one core there is never idle time between ready tasks.
        prop_assert!((r.makespan - total).abs() < 1e-9);
    }

    #[test]
    fn more_cores_never_hurt_much(tasks in random_graph()) {
        // Greedy list scheduling is not strictly monotone, but on these
        // graphs extra cores must never cost more than the jitter margin.
        let g = build(&tasks);
        let t2 = simulate(&g, &SimConfig::xeon(2)).makespan;
        let t8 = simulate(&g, &SimConfig::xeon(8)).makespan;
        prop_assert!(t8 <= t2 * 1.25, "2 cores {t2} vs 8 cores {t8}");
    }
}
