//! Batch iteration helpers.
//!
//! Deterministic epoch iterators over the synthetic corpora, producing the
//! `(Vec<Matrix>, targets)` shape the `bpar-core` executors consume.

use crate::tidigits::TidigitsDataset;
use crate::wikitext::WikitextDataset;
use bpar_tensor::{Float, Matrix};

/// A stream of many-to-one speech batches.
pub struct SpeechBatches<'a, T: Float> {
    dataset: &'a TidigitsDataset,
    rows: usize,
    seq_len: usize,
    next_index: u64,
    remaining: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Float> SpeechBatches<'a, T> {
    /// `count` batches of `rows` utterances, `seq_len` frames each.
    pub fn new(dataset: &'a TidigitsDataset, rows: usize, seq_len: usize, count: usize) -> Self {
        Self {
            dataset,
            rows,
            seq_len,
            next_index: 0,
            remaining: count,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Float> Iterator for SpeechBatches<'_, T> {
    type Item = (Vec<Matrix<T>>, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let batch = self.dataset.batch(self.next_index, self.rows, self.seq_len);
        self.next_index += self.rows as u64;
        Some(batch)
    }
}

/// A stream of many-to-many next-character batches.
pub struct CharBatches<'a, T: Float> {
    dataset: &'a WikitextDataset,
    rows: usize,
    seq_len: usize,
    next_stream: u64,
    remaining: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Float> CharBatches<'a, T> {
    /// `count` batches of `rows` windows, `seq_len` characters each.
    pub fn new(dataset: &'a WikitextDataset, rows: usize, seq_len: usize, count: usize) -> Self {
        Self {
            dataset,
            rows,
            seq_len,
            next_stream: 0,
            remaining: count,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Float> Iterator for CharBatches<'_, T> {
    type Item = (Vec<Matrix<T>>, Vec<Vec<usize>>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let batch = self
            .dataset
            .batch(self.next_stream, self.rows, self.seq_len);
        self.next_stream += self.rows as u64;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speech_batches_are_disjoint_and_counted() {
        let ds = TidigitsDataset::new(4, 8, 1);
        let batches: Vec<_> = SpeechBatches::<f32>::new(&ds, 3, 10, 4).collect();
        assert_eq!(batches.len(), 4);
        // Consecutive batches use different utterances (labels differ with
        // overwhelming probability over 4 batches).
        let all_labels: Vec<usize> = batches.iter().flat_map(|(_, l)| l.clone()).collect();
        assert_eq!(all_labels.len(), 12);
    }

    #[test]
    fn char_batches_have_consistent_shapes() {
        let ds = WikitextDataset::new(1);
        let mut it = CharBatches::<f64>::new(&ds, 2, 5, 2);
        let (xs, ts) = it.next().unwrap();
        assert_eq!(xs.len(), 5);
        assert_eq!(ts.len(), 5);
        assert_eq!(xs[0].rows(), 2);
        assert!(it.next().is_some());
        assert!(it.next().is_none());
    }
}

/// Groups utterances into batches of similar duration ("bucketing"),
/// padding only within each bucket.
///
/// The paper notes that B-Par "adjusts the computation graph dynamically
/// at run-time" for variable sequence lengths between batches (§III-B);
/// bucketing is how a data pipeline exploits that: instead of padding
/// every utterance to a global maximum, each batch is padded only to its
/// own longest member, so short batches produce genuinely shorter
/// unrolled graphs.
pub struct BucketedSpeechBatches<'a, T: Float> {
    dataset: &'a TidigitsDataset,
    /// Utterance indices grouped by length, longest bucket first.
    buckets: Vec<(usize, Vec<u64>)>,
    _marker: std::marker::PhantomData<T>,
}

impl<'a, T: Float> BucketedSpeechBatches<'a, T> {
    /// Buckets utterances `0..count` by their true length into groups of
    /// `rows`, each padded to the longest utterance in its bucket.
    pub fn new(dataset: &'a TidigitsDataset, count: u64, rows: usize) -> Self {
        assert!(rows > 0);
        let mut by_len: Vec<(usize, u64)> = (0..count)
            .map(|i| (dataset.utterance::<f32>(i).frames.len(), i))
            .collect();
        by_len.sort();
        let buckets = by_len
            .chunks(rows)
            .map(|chunk| {
                let max_len = chunk.iter().map(|&(l, _)| l).max().unwrap();
                (max_len, chunk.iter().map(|&(_, i)| i).collect())
            })
            .collect();
        Self {
            dataset,
            buckets,
            _marker: std::marker::PhantomData,
        }
    }

    /// Total padding frames a naive global-max batching would use minus
    /// what bucketing uses — the saved work.
    pub fn padding_saved(&self) -> usize {
        let global_max = self.buckets.iter().map(|&(l, _)| l).max().unwrap_or(0);
        self.buckets
            .iter()
            .map(|(len, idx)| (global_max - len) * idx.len())
            .sum()
    }
}

impl<T: Float> Iterator for BucketedSpeechBatches<'_, T> {
    type Item = (Vec<Matrix<T>>, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        let (seq_len, indices) = self.buckets.pop()?;
        let utterances: Vec<_> = indices
            .iter()
            .map(|&i| self.dataset.utterance::<T>(i))
            .collect();
        let labels = utterances.iter().map(|u| u.label).collect();
        let dim = self.dataset.feature_dim;
        let xs = (0..seq_len)
            .map(|t| {
                Matrix::from_fn(utterances.len(), dim, |r, d| {
                    utterances[r].frames.get(t).map(|f| f[d]).unwrap_or(T::ZERO)
                })
            })
            .collect();
        Some((xs, labels))
    }
}

#[cfg(test)]
mod bucket_tests {
    use super::*;

    #[test]
    fn buckets_pad_to_their_own_maximum() {
        let ds = TidigitsDataset::new(4, 12, 9);
        let batches: Vec<_> = BucketedSpeechBatches::<f32>::new(&ds, 40, 8).collect();
        assert_eq!(batches.len(), 5);
        // Batch sequence lengths differ across buckets (variable-length
        // utterances) and each is a valid batch.
        let lens: Vec<usize> = batches.iter().map(|(xs, _)| xs.len()).collect();
        assert!(lens.iter().max() > lens.iter().min(), "lens {lens:?}");
        for (xs, labels) in &batches {
            assert_eq!(xs[0].rows(), labels.len());
        }
    }

    #[test]
    fn bucketing_saves_padding() {
        let ds = TidigitsDataset::new(4, 16, 10);
        let b = BucketedSpeechBatches::<f32>::new(&ds, 64, 8);
        assert!(b.padding_saved() > 0);
    }

    #[test]
    fn all_utterances_appear_exactly_once() {
        let ds = TidigitsDataset::new(4, 10, 11);
        let batches: Vec<_> = BucketedSpeechBatches::<f64>::new(&ds, 30, 7).collect();
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 30);
    }
}
