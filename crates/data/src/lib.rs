//! # bpar-data
//!
//! Dataset substrates for the B-Par evaluation.
//!
//! The paper evaluates on two corpora we cannot redistribute:
//!
//! * **TIDIGITS** (LDC catalogue, proprietary) — speaker-independent
//!   connected-digit speech recognition, processed by many-to-one BRNNs;
//! * a 1.4-billion-character **Wikipedia** dump — next-character
//!   prediction, processed by many-to-many BRNNs.
//!
//! Per the reproduction's substitution rule (see DESIGN.md §2), this crate
//! generates synthetic equivalents that exercise exactly the same code
//! paths: [`tidigits`] produces variable-length real-valued feature
//! sequences labelled with digit classes, and [`wikitext`] produces an
//! English-like character stream for next-character prediction. Both are
//! fully deterministic given a seed.

pub mod batch;
pub mod features;
pub mod tidigits;
pub mod wikitext;

pub use tidigits::TidigitsDataset;
pub use wikitext::WikitextDataset;
