//! Synthetic Wikipedia-like character corpus for next-character prediction.
//!
//! The paper's many-to-many experiments train on a 1.4-billion-character
//! Wikipedia dump. This generator produces an English-like character
//! stream from an order-2 Markov chain whose transition structure is built
//! from a hand-written set of common English digraphs/trigraphs plus
//! word-length statistics, so the stream has the two properties the BRNN
//! exploits: strong local predictability (a model can reduce perplexity
//! substantially below uniform) and long-tail variability (perplexity
//! stays well above 1).

use crate::features::one_hot;
use bpar_tensor::{Float, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Character vocabulary: 26 letters + space + period.
pub const VOCAB: &[u8] = b"abcdefghijklmnopqrstuvwxyz .";

/// Vocabulary size.
pub const VOCAB_SIZE: usize = VOCAB.len();

/// Frequent English word stems used to bias the chain toward plausible
/// letter sequences.
const STEMS: &[&str] = &[
    "the", "and", "ing", "ion", "tion", "ent", "for", "her", "ter", "hat", "tha", "ere", "ate",
    "his", "con", "res", "ver", "all", "ons", "nce", "men", "ith", "ted", "ers", "pro", "thi",
    "wit", "are", "ess", "not",
];

/// Order-2 Markov character generator with an English-like transition
/// table.
///
/// ```
/// use bpar_data::wikitext::{WikitextDataset, VOCAB_SIZE};
/// let data = WikitextDataset::new(7);
/// let text = WikitextDataset::decode(&data.generate(0, 40));
/// assert_eq!(text.len(), 40);
/// let (xs, targets) = data.batch::<f32>(0, 2, 8);
/// assert_eq!(xs.len(), 8);
/// assert_eq!(xs[0].shape(), (2, VOCAB_SIZE)); // one-hot characters
/// assert_eq!(targets.len(), 8);               // next-char per step
/// ```
#[derive(Debug, Clone)]
pub struct WikitextDataset {
    /// Transition weights: `table[a][b][c]` = weight of `c` after `ab`.
    table: Vec<Vec<Vec<f64>>>,
    seed: u64,
}

fn idx(c: u8) -> usize {
    VOCAB
        .iter()
        .position(|&v| v == c)
        .expect("char outside vocab")
}

impl WikitextDataset {
    /// Builds the transition table deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x11_71_13);
        let v = VOCAB_SIZE;
        // Base: small random weights (smoothing / long tail).
        let mut table = vec![vec![vec![0.0f64; v]; v]; v];
        for a in table.iter_mut() {
            for b in a.iter_mut() {
                for c in b.iter_mut() {
                    *c = rng.gen_range(0.005..0.05);
                }
            }
        }
        // Boost bigrams from common stems regardless of context, so the
        // chain reaches English-like states from anywhere…
        for stem in STEMS {
            let bytes = stem.as_bytes();
            for w in bytes.windows(2) {
                for ctx in table.iter_mut() {
                    ctx[idx(w[0])][idx(w[1])] += 1.0;
                }
            }
        }
        // …and boost full trigraphs heavily once in those states.
        for stem in STEMS {
            let bytes = stem.as_bytes();
            for w in bytes.windows(3) {
                table[idx(w[0])][idx(w[1])][idx(w[2])] += 10.0;
            }
        }
        // Word boundaries: after 'e', 'd', 's', 't' a space is common; a
        // space is usually followed by 't', 'a', 'o', 'w', 's'.
        let space = idx(b' ');
        for &end in b"edstnry" {
            for ctx in table.iter_mut() {
                ctx[idx(end)][space] += 2.5;
            }
        }
        for &start in b"taowsbcmf" {
            for ctx in table.iter_mut() {
                ctx[space][idx(start)] += 2.5;
            }
        }
        // Sentences end occasionally: period after space-ish contexts, and
        // a period is followed by a space.
        for ctx in table.iter_mut() {
            for prev in ctx.iter_mut() {
                prev[idx(b'.')] += 0.05;
            }
            ctx[idx(b'.')][space] += 20.0;
        }
        Self { table, seed }
    }

    /// Generates `n` characters (as vocabulary indices), deterministically
    /// for a given `stream` id.
    pub fn generate(&self, stream: u64, n: usize) -> Vec<usize> {
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(stream * 0x5851_f42d));
        let mut out = Vec::with_capacity(n);
        let mut a = idx(b' ');
        let mut b = idx(b't');
        for _ in 0..n {
            let weights = &self.table[a][b];
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut c = 0;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    c = i;
                    break;
                }
                pick -= w;
            }
            out.push(c);
            a = b;
            b = c;
        }
        out
    }

    /// Decodes indices back to text (for inspection and examples).
    pub fn decode(indices: &[usize]) -> String {
        indices.iter().map(|&i| VOCAB[i] as char).collect()
    }

    /// Builds a next-character-prediction batch: `rows` independent
    /// character windows of `seq_len + 1` characters each, one-hot encoded.
    ///
    /// Returns `(xs, targets)` where `xs[t]` is `rows × VOCAB_SIZE` holding
    /// character `t` of every window, and `targets[t][row]` is character
    /// `t + 1` — the many-to-many format of the executors.
    pub fn batch<T: Float>(
        &self,
        first_stream: u64,
        rows: usize,
        seq_len: usize,
    ) -> (Vec<Matrix<T>>, Vec<Vec<usize>>) {
        assert!(rows > 0 && seq_len > 0);
        let windows: Vec<Vec<usize>> = (0..rows)
            .map(|r| self.generate(first_stream + r as u64, seq_len + 1))
            .collect();
        let xs = (0..seq_len)
            .map(|t| {
                let chars: Vec<usize> = windows.iter().map(|w| w[t]).collect();
                one_hot(&chars, VOCAB_SIZE)
            })
            .collect();
        let targets = (0..seq_len)
            .map(|t| windows.iter().map(|w| w[t + 1]).collect())
            .collect();
        (xs, targets)
    }

    /// Empirical unigram entropy (nats) of a generated stream — used to
    /// check the corpus is neither trivial nor uniform.
    pub fn unigram_entropy(&self, stream: u64, n: usize) -> f64 {
        let chars = self.generate(stream, n);
        let mut counts = vec![0usize; VOCAB_SIZE];
        for &c in &chars {
            counts[c] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.ln()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let ds = WikitextDataset::new(7);
        assert_eq!(ds.generate(1, 100), ds.generate(1, 100));
        assert_ne!(ds.generate(1, 100), ds.generate(2, 100));
    }

    #[test]
    fn stream_uses_whole_vocab_eventually() {
        let ds = WikitextDataset::new(1);
        let chars = ds.generate(0, 20_000);
        let mut seen = [false; VOCAB_SIZE];
        for c in chars {
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn entropy_is_between_trivial_and_uniform() {
        let ds = WikitextDataset::new(2);
        let h = ds.unigram_entropy(0, 50_000);
        let uniform = (VOCAB_SIZE as f64).ln(); // ≈ 3.33 nats
        assert!(h > 1.5, "too predictable: {h}");
        assert!(h < uniform - 0.05, "indistinguishable from uniform: {h}");
    }

    #[test]
    fn common_trigraphs_are_boosted() {
        // "the" should be much more common than a random trigraph.
        let ds = WikitextDataset::new(3);
        let text = WikitextDataset::decode(&ds.generate(0, 50_000));
        let the = text.matches("the").count();
        let xqz = text.matches("xqz").count();
        assert!(the > 20 * (xqz + 1), "the={the} xqz={xqz}");
    }

    #[test]
    fn batch_shapes_and_one_hot() {
        let ds = WikitextDataset::new(4);
        let (xs, targets) = ds.batch::<f32>(0, 3, 6);
        assert_eq!(xs.len(), 6);
        assert_eq!(targets.len(), 6);
        for x in &xs {
            assert_eq!(x.shape(), (3, VOCAB_SIZE));
            // Each row is one-hot.
            for r in 0..3 {
                let s: f32 = x.row(r).iter().sum();
                assert_eq!(s, 1.0);
            }
        }
        // Targets shift by one: target[t] equals the argmax of xs[t+1].
        for (t, target) in targets.iter().enumerate().take(5) {
            for (r, &want) in target.iter().enumerate() {
                let hot = xs[t + 1].row(r).iter().position(|&v| v == 1.0).unwrap();
                assert_eq!(want, hot);
            }
        }
    }

    #[test]
    fn decode_round_trips_vocab() {
        let s = WikitextDataset::decode(&[0, 25, 26, 27]);
        assert_eq!(s, "az .");
    }
}
