//! Synthetic TIDIGITS-like speech corpus.
//!
//! TIDIGITS contains utterances of the eleven English digit words
//! ("one"… "nine", "zero", "oh") spoken by many speakers, framed into
//! spectral feature vectors. This generator reproduces the *statistical
//! shape* the BRNN consumes:
//!
//! * each digit class has a characteristic trajectory through feature
//!   space (a per-class sequence of band-energy templates, standing in for
//!   formant tracks),
//! * utterances vary in duration and speaking rate,
//! * per-speaker offsets and additive noise corrupt the frames.
//!
//! The result is a many-to-one classification problem of realistic
//! difficulty: linear models plateau well below BRNN accuracy, and the
//! task is learnable to high accuracy by the small BLSTMs used in tests.

use crate::features::one_hot;
use bpar_tensor::{Float, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of digit classes (1–9, "zero", "oh").
pub const DIGIT_CLASSES: usize = 11;

/// One synthetic utterance.
#[derive(Debug, Clone)]
pub struct Utterance<T: Float> {
    /// Frame sequence, `frames × feature_dim`.
    pub frames: Vec<Vec<T>>,
    /// Digit label in `0..DIGIT_CLASSES`.
    pub label: usize,
}

/// Synthetic TIDIGITS-like corpus generator.
///
/// ```
/// use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
/// let data = TidigitsDataset::new(13, 10, 42);
/// let (frames, labels) = data.batch::<f32>(0, 4, 12);
/// assert_eq!(frames.len(), 12);              // 12 timesteps
/// assert_eq!(frames[0].shape(), (4, 13));    // 4 utterances x 13 features
/// assert!(labels.iter().all(|&l| l < DIGIT_CLASSES));
/// ```
#[derive(Debug, Clone)]
pub struct TidigitsDataset {
    /// Feature vector width (the paper's input sizes: 64–1024).
    pub feature_dim: usize,
    /// Mean utterance length in frames.
    pub mean_frames: usize,
    /// Class templates: `[class][segment][feature]`.
    templates: Vec<Vec<Vec<f64>>>,
    seed: u64,
}

/// Number of template segments each digit trajectory moves through
/// (onset, nucleus, coda — like a short word).
const SEGMENTS: usize = 3;

impl TidigitsDataset {
    /// Builds the per-class templates deterministically from `seed`.
    pub fn new(feature_dim: usize, mean_frames: usize, seed: u64) -> Self {
        assert!(feature_dim >= 2, "feature_dim too small");
        assert!(mean_frames >= 4, "utterances need at least 4 frames");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7151_d161);
        let templates = (0..DIGIT_CLASSES)
            .map(|_| {
                (0..SEGMENTS)
                    .map(|_| (0..feature_dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect()
            })
            .collect();
        Self {
            feature_dim,
            mean_frames,
            templates,
            seed,
        }
    }

    /// Generates utterance `index` (deterministic per index).
    pub fn utterance<T: Float>(&self, index: u64) -> Utterance<T> {
        let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(index * 0x9e37_79b9));
        let label = rng.gen_range(0..DIGIT_CLASSES);
        // Speaking-rate variation: ±35% around the mean duration.
        let lo = (self.mean_frames as f64 * 0.65).max(4.0) as usize;
        let hi = (self.mean_frames as f64 * 1.35) as usize + 1;
        let frames_n = rng.gen_range(lo..hi);
        // Per-speaker bias shifts every frame of the utterance.
        let speaker_bias: Vec<f64> = (0..self.feature_dim)
            .map(|_| rng.gen_range(-0.15..0.15))
            .collect();

        let tpl = &self.templates[label];
        let frames = (0..frames_n)
            .map(|f| {
                // Position within the utterance selects/interpolates the
                // template segments.
                let pos = f as f64 / (frames_n - 1).max(1) as f64 * (SEGMENTS - 1) as f64;
                let seg = (pos.floor() as usize).min(SEGMENTS - 2);
                let frac = pos - seg as f64;
                // Amplitude envelope: quiet onset/offset.
                let envelope =
                    (std::f64::consts::PI * f as f64 / frames_n as f64).sin() * 0.7 + 0.3;
                (0..self.feature_dim)
                    .map(|d| {
                        let v = tpl[seg][d] * (1.0 - frac) + tpl[seg + 1][d] * frac;
                        let noise = rng.gen_range(-0.25..0.25);
                        T::from_f64(v * envelope + speaker_bias[d] + noise)
                    })
                    .collect()
            })
            .collect();
        Utterance { frames, label }
    }

    /// Generates a batch of `rows` utterances (indices
    /// `first_index .. first_index + rows`) padded/truncated to `seq_len`
    /// frames, as the `seq_len` matrices of `rows × feature_dim` the
    /// executors consume, plus the label vector.
    ///
    /// Shorter utterances are zero-padded at the end (silence), matching
    /// how frameworks batch variable-length speech.
    pub fn batch<T: Float>(
        &self,
        first_index: u64,
        rows: usize,
        seq_len: usize,
    ) -> (Vec<Matrix<T>>, Vec<usize>) {
        assert!(rows > 0 && seq_len > 0);
        let utterances: Vec<Utterance<T>> = (0..rows)
            .map(|r| self.utterance(first_index + r as u64))
            .collect();
        let labels = utterances.iter().map(|u| u.label).collect();
        let xs = (0..seq_len)
            .map(|t| {
                Matrix::from_fn(rows, self.feature_dim, |r, d| {
                    utterances[r].frames.get(t).map(|f| f[d]).unwrap_or(T::ZERO)
                })
            })
            .collect();
        (xs, labels)
    }

    /// One-hot label matrix for a batch (utility for example code).
    pub fn one_hot_labels<T: Float>(labels: &[usize]) -> Matrix<T> {
        one_hot(labels, DIGIT_CLASSES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let ds = TidigitsDataset::new(8, 10, 1);
        let a: Utterance<f64> = ds.utterance(5);
        let b: Utterance<f64> = ds.utterance(5);
        assert_eq!(a.label, b.label);
        assert_eq!(a.frames, b.frames);
        let c: Utterance<f64> = ds.utterance(6);
        assert!(c.label != a.label || c.frames != a.frames);
    }

    #[test]
    fn durations_vary_around_mean() {
        let ds = TidigitsDataset::new(4, 20, 2);
        let lens: Vec<usize> = (0..50)
            .map(|i| ds.utterance::<f32>(i).frames.len())
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 13 && max <= 27, "lens {min}..{max}");
        assert!(max > min, "durations should vary");
    }

    #[test]
    fn all_classes_appear() {
        let ds = TidigitsDataset::new(4, 10, 3);
        let mut seen = [false; DIGIT_CLASSES];
        for i in 0..300 {
            seen[ds.utterance::<f32>(i).label] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 11 digits should occur");
    }

    #[test]
    fn batch_shapes_and_padding() {
        let ds = TidigitsDataset::new(6, 8, 4);
        let (xs, labels) = ds.batch::<f64>(0, 5, 12);
        assert_eq!(xs.len(), 12);
        assert_eq!(labels.len(), 5);
        for x in &xs {
            assert_eq!(x.shape(), (5, 6));
            assert!(x.all_finite());
        }
        // Frame 11 is beyond most 8-frame utterances: mostly zero padding.
        let tail_norm = xs[11].frobenius_norm();
        let head_norm = xs[2].frobenius_norm();
        assert!(tail_norm < head_norm, "tail {tail_norm} head {head_norm}");
    }

    #[test]
    fn classes_are_separable_by_template() {
        // Mean frame of utterances of the same class should be closer to
        // each other than to a different class (signal >> noise on average).
        let ds = TidigitsDataset::new(16, 12, 5);
        let mean_frame = |idx: u64| -> Vec<f64> {
            let u: Utterance<f64> = ds.utterance(idx);
            let mut m = vec![0.0; 16];
            for f in &u.frames {
                for (mm, &v) in m.iter_mut().zip(f) {
                    *mm += v;
                }
            }
            for v in &mut m {
                *v /= u.frames.len() as f64;
            }
            m
        };
        // Find two utterances of the same class and one of a different class.
        let base: Utterance<f64> = ds.utterance(0);
        let mut same = None;
        let mut diff = None;
        for i in 1..500 {
            let u: Utterance<f64> = ds.utterance(i);
            if u.label == base.label && same.is_none() {
                same = Some(i);
            }
            if u.label != base.label && diff.is_none() {
                diff = Some(i);
            }
            if same.is_some() && diff.is_some() {
                break;
            }
        }
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
        };
        let m0 = mean_frame(0);
        let msame = mean_frame(same.unwrap());
        let mdiff = mean_frame(diff.unwrap());
        assert!(
            d(&m0, &msame) < d(&m0, &mdiff),
            "same-class should be closer"
        );
    }

    #[test]
    fn one_hot_labels_shape() {
        let m: Matrix<f32> = TidigitsDataset::one_hot_labels(&[0, 10, 3]);
        assert_eq!(m.shape(), (3, 11));
        assert_eq!(m.get(1, 10), 1.0);
        assert_eq!(bpar_tensor::ops::sum(&m), 3.0);
    }
}
