//! Feature encoding and normalisation utilities.

use bpar_tensor::{Float, Matrix};

/// One-hot encodes `indices` into a `len(indices) × classes` matrix.
///
/// # Panics
/// Panics if an index is out of range.
pub fn one_hot<T: Float>(indices: &[usize], classes: usize) -> Matrix<T> {
    let mut m = Matrix::zeros(indices.len(), classes);
    for (r, &c) in indices.iter().enumerate() {
        assert!(c < classes, "index {c} out of range for {classes} classes");
        m.set(r, c, T::ONE);
    }
    m
}

/// Per-feature standardisation statistics computed over a set of frames.
#[derive(Debug, Clone)]
pub struct Standardizer {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (floored at 1e-8).
    pub std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean/std over every row of every matrix in `batches`.
    pub fn fit<T: Float>(batches: &[Matrix<T>]) -> Self {
        assert!(!batches.is_empty(), "cannot fit on empty data");
        let dim = batches[0].cols();
        let mut mean = vec![0.0f64; dim];
        let mut count = 0usize;
        for m in batches {
            assert_eq!(m.cols(), dim, "inconsistent feature width");
            for r in 0..m.rows() {
                for (acc, &v) in mean.iter_mut().zip(m.row(r)) {
                    *acc += v.to_f64();
                }
            }
            count += m.rows();
        }
        for v in &mut mean {
            *v /= count.max(1) as f64;
        }
        let mut var = vec![0.0f64; dim];
        for m in batches {
            for r in 0..m.rows() {
                for ((acc, &mu), &v) in var.iter_mut().zip(&mean).zip(m.row(r)) {
                    let d = v.to_f64() - mu;
                    *acc += d * d;
                }
            }
        }
        let std = var
            .into_iter()
            .map(|v| (v / count.max(1) as f64).sqrt().max(1e-8))
            .collect();
        Self { mean, std }
    }

    /// Applies `(x - mean) / std` in place.
    pub fn apply<T: Float>(&self, m: &mut Matrix<T>) {
        assert_eq!(m.cols(), self.mean.len(), "feature width mismatch");
        for r in 0..m.rows() {
            for ((v, &mu), &sd) in m.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = T::from_f64((v.to_f64() - mu) / sd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_basics() {
        let m: Matrix<f64> = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_index() {
        let _: Matrix<f32> = one_hot(&[3], 3);
    }

    #[test]
    fn standardizer_normalises_to_zero_mean_unit_std() {
        let data = vec![
            Matrix::from_vec(2, 2, vec![1.0f64, 10.0, 3.0, 30.0]),
            Matrix::from_vec(2, 2, vec![5.0, 50.0, 7.0, 70.0]),
        ];
        let s = Standardizer::fit(&data);
        let mut all = Matrix::vstack(&[&data[0], &data[1]]);
        s.apply(&mut all);
        for c in 0..2 {
            let col: Vec<f64> = (0..4).map(|r| all.get(r, c)).collect();
            let mean: f64 = col.iter().sum::<f64>() / 4.0;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let data = vec![Matrix::from_vec(3, 1, vec![2.0f32, 2.0, 2.0])];
        let s = Standardizer::fit(&data);
        let mut m = data[0].clone();
        s.apply(&mut m);
        assert!(m.all_finite());
    }
}
