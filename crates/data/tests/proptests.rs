//! Property-based tests for the dataset substrates.

use bpar_data::features::{one_hot, Standardizer};
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use bpar_data::wikitext::{WikitextDataset, VOCAB_SIZE};
use bpar_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tidigits_batches_are_deterministic_and_well_formed(
        feature_dim in 2usize..24,
        mean_frames in 4usize..20,
        rows in 1usize..8,
        seq_len in 1usize..24,
        seed in 0u64..500,
        start in 0u64..10_000,
    ) {
        let ds = TidigitsDataset::new(feature_dim, mean_frames, seed);
        let (xs1, l1) = ds.batch::<f32>(start, rows, seq_len);
        let (xs2, l2) = ds.batch::<f32>(start, rows, seq_len);
        prop_assert_eq!(&l1, &l2);
        prop_assert_eq!(xs1.len(), seq_len);
        for (a, b) in xs1.iter().zip(&xs2) {
            prop_assert_eq!(a.max_abs_diff(b), 0.0);
            prop_assert_eq!(a.shape(), (rows, feature_dim));
            prop_assert!(a.all_finite());
        }
        prop_assert!(l1.iter().all(|&l| l < DIGIT_CLASSES));
    }

    #[test]
    fn wikitext_windows_are_consistent(
        seed in 0u64..100,
        rows in 1usize..6,
        seq_len in 1usize..20,
        stream in 0u64..1000,
    ) {
        let ds = WikitextDataset::new(seed);
        let (xs, targets) = ds.batch::<f64>(stream, rows, seq_len);
        prop_assert_eq!(xs.len(), seq_len);
        prop_assert_eq!(targets.len(), seq_len);
        for t in 0..seq_len {
            for (r, &target) in targets[t].iter().enumerate() {
                // Exactly one hot element per row.
                let hot: Vec<usize> = xs[t]
                    .row(r)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v == 1.0)
                    .map(|(i, _)| i)
                    .collect();
                prop_assert_eq!(hot.len(), 1);
                prop_assert!(target < VOCAB_SIZE);
                // Shift property: target[t] is the input character at t+1.
                if t + 1 < seq_len {
                    let next_hot = xs[t + 1].row(r).iter().position(|&v| v == 1.0).unwrap();
                    prop_assert_eq!(target, next_hot);
                }
            }
        }
    }

    #[test]
    fn one_hot_rows_sum_to_one(
        indices in proptest::collection::vec(0usize..10, 1..20),
    ) {
        let m: Matrix<f64> = one_hot(&indices, 10);
        for (r, &idx) in indices.iter().enumerate() {
            let s: f64 = m.row(r).iter().sum();
            prop_assert_eq!(s, 1.0);
            prop_assert_eq!(m.get(r, idx), 1.0);
        }
    }

    #[test]
    fn standardizer_is_shift_and_scale_invariant(
        vals in proptest::collection::vec(-5.0f64..5.0, 8..40),
        shift in -10.0f64..10.0,
        scale in 0.1f64..5.0,
    ) {
        // Standardizing x and standardizing a*x + b give the same result.
        let cols = 2;
        let rows = vals.len() / cols;
        let raw = Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let transformed = raw.map(|v| v * scale + shift);

        let s1 = Standardizer::fit(std::slice::from_ref(&raw));
        let s2 = Standardizer::fit(std::slice::from_ref(&transformed));
        let mut a = raw.clone();
        s1.apply(&mut a);
        let mut b = transformed.clone();
        s2.apply(&mut b);
        prop_assert!(a.max_abs_diff(&b) < 1e-6, "diff {}", a.max_abs_diff(&b));
    }
}
