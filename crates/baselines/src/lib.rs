//! # bpar-baselines
//!
//! Analytic execution-time models of the frameworks the paper benchmarks
//! B-Par against: Keras/TensorFlow 2.3 and PyTorch 1.7 on the dual-socket
//! Xeon (K-CPU, P-CPU columns of Tables III/IV) and on a V100 GPU (K-GPU,
//! P-GPU columns).
//!
//! We cannot run the original framework binaries in this environment, so
//! each baseline is modelled from the execution discipline the paper (and
//! the frameworks' own documentation) describes, with a handful of
//! calibration constants chosen per framework — *not per experiment* —
//! and validated against all rows of Tables III and IV at once:
//!
//! * **CPU frameworks** ([`framework`]): per-layer barriers with the two
//!   directions executed sequentially; timestep kernels parallelised only
//!   intra-op (GEMM over cores) with a per-op synchronisation cost that
//!   grows with the core count; PyTorch additionally pays per-step
//!   activation-copy traffic and falls off the L3 cliff when a layer's
//!   weights exceed the shared cache — which is exactly what makes its
//!   measured h=1024 BLSTM rows catastrophic (≥117 s) while the same rows
//!   under BGRU (whose weights still fit) stay near 30–50 s.
//! * **GPU frameworks** ([`gpu`]): per-timestep kernel dispatch plus a
//!   roofline GEMM term — fast for large batch × seq (cuDNN wins Table
//!   III's big rows) but latency-bound for small batches, where B-Par on
//!   the CPU wins (the paper's headline small-batch result).
//!
//! The constants live in the model constructors with derivations in the
//! doc comments; EXPERIMENTS.md reports model-vs-paper for every row.

pub mod framework;
pub mod gpu;

pub use framework::CpuFramework;
pub use gpu::GpuFramework;

/// Which part of a batch the time covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Forward only.
    Inference,
    /// Forward + backward + weight update.
    #[default]
    Training,
}
