//! CPU framework models (K-CPU and P-CPU columns).
//!
//! Execution discipline (paper §II): for each layer, the framework runs
//! the forward-direction RNN sequentially over timesteps, then — behind a
//! barrier — the reverse direction, then the merges. Only *intra-op*
//! parallelism is available: each timestep's fused GEMM is split across
//! cores, paying a per-op fork/join synchronisation that grows with the
//! core count. Training runs the same schedule backward with ~2× the
//! flops per step.
//!
//! The per-step model is
//!
//! ```text
//! step = flops / (flops_per_core · cores · derate)   (parallel GEMM)
//!      + sync_base + sync_per_core · cores           (fork/join barrier)
//!      + weight_traffic + copy_traffic               (memory terms)
//! ```
//!
//! and, following the paper's methodology ("we perform 64 experiments …
//! and report the best"), [`CpuFramework::best_batch_time`] minimises the
//! batch time over the core counts {1, 2, 4, 8, 16, 24, 32, 48}.

use crate::Phase;
use bpar_core::model::BrnnConfig;
use bpar_sim::Machine;
use serde::Serialize;

/// Analytic model of a CPU deep-learning framework.
///
/// ```
/// use bpar_baselines::{CpuFramework, Phase};
/// use bpar_core::model::BrnnConfig;
/// use bpar_sim::Machine;
///
/// let cfg = BrnnConfig { layers: 6, input_size: 256, hidden_size: 256,
///                        seq_len: 100, ..Default::default() };
/// let machine = Machine::xeon_8160();
/// let (keras, cores) = CpuFramework::keras()
///     .best_batch_time(&cfg, 128, &machine, Phase::Training);
/// let (pytorch, _) = CpuFramework::pytorch()
///     .best_batch_time(&cfg, 128, &machine, Phase::Training);
/// assert!(pytorch > keras);     // Table III ordering
/// assert!(cores >= 8);          // big batches want many cores
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct CpuFramework {
    /// Display name.
    pub name: &'static str,
    /// Fraction of per-core GEMM throughput the framework's kernels reach.
    pub gemm_derate: f64,
    /// Fixed dispatch cost per operator, seconds.
    pub sync_base: f64,
    /// Additional fork/join cost per participating core, seconds.
    pub sync_per_core: f64,
    /// Per-step activation-copy bytes as a multiple of
    /// `batch × (input + 5·hidden) × 4` (gate concat/split buffers).
    pub copy_factor: f64,
    /// Effective bandwidth for streamed weights that still fit in L3,
    /// bytes/s (0 disables the term: weights stay cached).
    pub weight_stream_bw: f64,
    /// Effective bandwidth once a layer's weights exceed the shared L3
    /// (cache-thrash regime), bytes/s.
    pub weight_thrash_bw: f64,
    /// Whole-batch multiplier when both sockets are active (NUMA).
    pub numa_factor: f64,
}

impl CpuFramework {
    /// Keras / TensorFlow 2.3 with Intel MKL + oneDNN.
    ///
    /// Derate 0.8: oneDNN GEMM is near-MKL quality. Sync ≈ 10 µs + 7 µs
    /// per core: a TensorFlow executor dispatch plus an MKL-parallel
    /// fork/join. Weights are packed once per layer and stay cached while
    /// they fit L3 (`weight_stream_bw = 0`).
    pub fn keras() -> Self {
        Self {
            name: "Keras-TF",
            gemm_derate: 0.80,
            sync_base: 10e-6,
            sync_per_core: 7e-6,
            copy_factor: 0.0,
            weight_stream_bw: 0.0,
            weight_thrash_bw: 4.0e9,
            numa_factor: 1.15,
        }
    }

    /// PyTorch 1.7 CPU.
    ///
    /// Derate 0.45 and sync 60 µs: the v1.7 RNN path dispatches four
    /// separate gate GEMMs plus concat/chunk ops per step through the
    /// autograd-aware dispatcher. `copy_factor 1`: the concat/split
    /// buffers are materialised once per step. The thrash bandwidth of
    /// 0.6 GB/s reproduces the measured collapse on h=1024 BLSTMs
    /// (32 MB/direction weight panels overflow the 33 MB L3 → the
    /// 117–147 s rows) while h=1024 BGRUs (24 MB/direction, still
    /// resident) stay an order of magnitude faster — the Table III vs IV
    /// asymmetry.
    pub fn pytorch() -> Self {
        Self {
            name: "PyTorch",
            gemm_derate: 0.45,
            sync_base: 60e-6,
            sync_per_core: 10e-6,
            copy_factor: 1.0,
            weight_stream_bw: 6.0e9,
            weight_thrash_bw: 0.6e9,
            numa_factor: 1.15,
        }
    }

    /// Batch time on a fixed core count, seconds.
    pub fn batch_time(
        &self,
        cfg: &BrnnConfig,
        batch: usize,
        cores: usize,
        machine: &Machine,
        phase: Phase,
    ) -> f64 {
        assert!(cores >= 1 && cores <= machine.total_cores());
        let hidden = cfg.hidden_size;
        let mut total = 0.0;

        for l in 0..cfg.layers {
            let input = cfg.layer_input_size(l);
            let flops = cfg.cell.forward_flops(batch, input, hidden) as f64;
            let weight_bytes = (cfg.cell.params(input, hidden) * 4) as f64;

            let compute = flops / (machine.flops_per_core * cores as f64 * self.gemm_derate);
            let sync = self.sync_base + self.sync_per_core * cores as f64;

            // Weight traffic per step: cached, streamed, or thrashing.
            // Directions run sequentially, so only one direction's weights
            // need to be resident at a time — but they share the L3 with
            // activations, hence the 0.8 headroom factor. For h = 1024
            // this puts LSTM layers (32 MB/direction) past the 33 MB L3
            // while GRU layers (24 MB/direction) still fit: the measured
            // Table III vs IV asymmetry.
            let weights_resident = weight_bytes <= 0.8 * machine.l3_per_socket as f64;
            // At small batch sizes the per-step activation traffic is too
            // small to evict the weight panels between gate GEMMs, so the
            // streaming term fades out below ~32 rows.
            let evict = (batch as f64 / 32.0).min(1.0);
            let weight_traffic = if !weights_resident {
                weight_bytes / self.weight_thrash_bw
            } else if self.weight_stream_bw > 0.0 {
                evict * weight_bytes / self.weight_stream_bw
            } else {
                0.0
            };

            let copy_bytes = self.copy_factor * (batch * (input + 5 * hidden) * 4) as f64;
            let copy_traffic = copy_bytes / 3.0e9;

            let step = compute + sync + weight_traffic + copy_traffic;
            // T steps, two directions run sequentially (the per-layer
            // barrier the paper removes).
            total += cfg.seq_len as f64 * 2.0 * step;

            // Merge ops: element-wise, bandwidth bound, one op per step.
            let merge_bytes = (3 * batch * hidden * 4) as f64;
            total +=
                cfg.seq_len as f64 * (merge_bytes / machine.mem_bw_per_socket + self.sync_base);
        }

        if phase == Phase::Training {
            // Backward ≈ 2× forward flops over the same op schedule, plus
            // the optimizer update streaming all parameters once.
            total *= 3.0;
            let params = (cfg.rnn_param_count() * 4) as f64;
            total += 3.0 * params / machine.mem_bw_per_socket;
        }

        if cores > machine.cores_per_socket {
            total *= self.numa_factor;
        }
        total
    }

    /// Best batch time over the paper's core-count sweep; returns
    /// `(seconds, cores)`.
    pub fn best_batch_time(
        &self,
        cfg: &BrnnConfig,
        batch: usize,
        machine: &Machine,
        phase: Phase,
    ) -> (f64, usize) {
        [1usize, 2, 4, 8, 16, 24, 32, 48]
            .iter()
            .filter(|&&c| c <= machine.total_cores())
            .map(|&c| (self.batch_time(cfg, batch, c, machine, phase), c))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty core sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpar_core::cell::CellKind;
    use bpar_core::merge::MergeMode;
    use bpar_core::model::ModelKind;

    fn cfg(cell: CellKind, input: usize, hidden: usize) -> BrnnConfig {
        BrnnConfig {
            cell,
            input_size: input,
            hidden_size: hidden,
            layers: 6,
            seq_len: 100,
            output_size: 11,
            merge: MergeMode::Sum,
            kind: ModelKind::ManyToOne,
        }
    }

    /// Paper anchors from Table III (seconds).
    #[test]
    fn keras_lands_near_table3_rows() {
        let m = Machine::xeon_8160();
        let k = CpuFramework::keras();
        // 256/256/128/100 → 1.770 s.
        let (t, _) = k.best_batch_time(&cfg(CellKind::Lstm, 256, 256), 128, &m, Phase::Training);
        assert!((0.9..3.5).contains(&t), "got {t}, paper 1.77");
        // 256/1024/256/100 → 28.57 s.
        let (t, _) = k.best_batch_time(&cfg(CellKind::Lstm, 256, 1024), 256, &m, Phase::Training);
        assert!((14.0..60.0).contains(&t), "got {t}, paper 28.6");
        // 256/256/1/100 → 0.277 s.
        let (t, _) = k.best_batch_time(&cfg(CellKind::Lstm, 256, 256), 1, &m, Phase::Training);
        assert!((0.1..0.6).contains(&t), "got {t}, paper 0.277");
    }

    #[test]
    fn pytorch_lands_near_table3_rows() {
        let m = Machine::xeon_8160();
        let p = CpuFramework::pytorch();
        // 256/256/128/100 → 3.96 s.
        let (t, _) = p.best_batch_time(&cfg(CellKind::Lstm, 256, 256), 128, &m, Phase::Training);
        assert!((2.0..8.0).contains(&t), "got {t}, paper 3.96");
        // The h=1024 cliff: 256/1024/256/100 → 143 s.
        let (t, _) = p.best_batch_time(&cfg(CellKind::Lstm, 256, 1024), 256, &m, Phase::Training);
        assert!((70.0..290.0).contains(&t), "got {t}, paper 143");
    }

    #[test]
    fn pytorch_gru_avoids_the_l3_cliff() {
        // Table IV: the same h=1024 config under BGRU is 50.8 s, not 143 s,
        // because GRU weights (¾ the size) still fit the shared L3.
        let m = Machine::xeon_8160();
        let p = CpuFramework::pytorch();
        let (lstm, _) =
            p.best_batch_time(&cfg(CellKind::Lstm, 256, 1024), 256, &m, Phase::Training);
        let (gru, _) = p.best_batch_time(&cfg(CellKind::Gru, 256, 1024), 256, &m, Phase::Training);
        assert!(
            lstm > 2.0 * gru,
            "LSTM {lstm} should collapse relative to GRU {gru}"
        );
    }

    #[test]
    fn pytorch_is_slower_than_keras_everywhere() {
        let m = Machine::xeon_8160();
        let k = CpuFramework::keras();
        let p = CpuFramework::pytorch();
        for (cell, input, hidden, batch) in [
            (CellKind::Lstm, 64, 256, 128),
            (CellKind::Lstm, 256, 256, 1),
            (CellKind::Lstm, 1024, 256, 256),
            (CellKind::Gru, 256, 1024, 256),
        ] {
            let c = cfg(cell, input, hidden);
            let (kt, _) = k.best_batch_time(&c, batch, &m, Phase::Training);
            let (pt, _) = p.best_batch_time(&c, batch, &m, Phase::Training);
            assert!(pt > kt, "{cell:?} {input}/{hidden}/{batch}: P {pt} K {kt}");
        }
    }

    #[test]
    fn inference_is_a_third_of_training() {
        let m = Machine::xeon_8160();
        let k = CpuFramework::keras();
        let c = cfg(CellKind::Lstm, 256, 256);
        let inf = k.batch_time(&c, 128, 24, &m, Phase::Inference);
        let trn = k.batch_time(&c, 128, 24, &m, Phase::Training);
        assert!(trn > 2.5 * inf && trn < 3.5 * inf);
    }

    #[test]
    fn best_core_count_is_moderate_for_small_batches() {
        // Per-op sync makes huge core counts counterproductive at batch 1;
        // the paper restricts ≤24-core runs to one socket for the same
        // reason.
        let m = Machine::xeon_8160();
        let k = CpuFramework::keras();
        let (_, cores) = k.best_batch_time(&cfg(CellKind::Lstm, 256, 256), 1, &m, Phase::Training);
        assert!(cores <= 8, "batch-1 best core count {cores}");
        let (_, cores) =
            k.best_batch_time(&cfg(CellKind::Lstm, 256, 1024), 256, &m, Phase::Training);
        assert!(cores >= 16, "big-batch best core count {cores}");
    }

    #[test]
    fn more_layers_cost_proportionally_more() {
        let m = Machine::xeon_8160();
        let k = CpuFramework::keras();
        let mut c12 = cfg(CellKind::Lstm, 256, 256);
        c12.layers = 12;
        let t6 = k.batch_time(&cfg(CellKind::Lstm, 256, 256), 128, 24, &m, Phase::Training);
        let t12 = k.batch_time(&c12, 128, 24, &m, Phase::Training);
        assert!((t12 / t6 - 2.0).abs() < 0.1);
    }
}
