//! GPU framework models (K-GPU and P-GPU columns).
//!
//! The V100 columns of Tables III/IV serve as context: cuDNN wins once
//! batch × sequence-length is large (its per-timestep kernels amortise
//! into big GEMMs) and loses to B-Par-on-CPU for small batches and short
//! sequences, where per-kernel dispatch latency and host↔device transfer
//! dominate. The model is
//!
//! ```text
//! batch_time = fixed + layers · seq · (dispatch + roofline_gemm)
//! ```
//!
//! with framework-specific dispatch costs: cuDNN's fused RNN kernels cost
//! ~0.1 ms per layer-step end to end, while PyTorch 1.7's unfused
//! per-timestep path costs ~0.9 ms — which is why its measured times are
//! ≈ 520–600 ms for seq 100 *regardless of model size*, ≈ 65 ms for
//! seq 10, ≈ 23 ms for seq 2. PyTorch runs with > 90 M parameters hung on
//! the authors' machine; the model reports `None` for those.

use crate::Phase;
use bpar_core::model::BrnnConfig;
use serde::Serialize;

/// Analytic model of a GPU deep-learning framework on a V100.
#[derive(Debug, Clone, Serialize)]
pub struct GpuFramework {
    /// Display name.
    pub name: &'static str,
    /// Fixed per-batch cost: host↔device transfer + graph setup, seconds.
    pub fixed: f64,
    /// Dispatch + kernel-launch cost per (layer, timestep), covering both
    /// directions, seconds.
    pub per_step: f64,
    /// Peak f32 throughput, flop/s (V100: ~14 Tflop/s).
    pub peak_flops: f64,
    /// Parameter count above which the framework is considered
    /// non-functional (`None` result), mirroring the hung PyTorch runs —
    /// every hidden-1024 row (≥ 69 M parameters) is blank in both Tables
    /// III and IV.
    pub param_limit: Option<usize>,
}

impl GpuFramework {
    /// Keras/TensorFlow with cuDNN.
    pub fn keras() -> Self {
        Self {
            name: "Keras-GPU",
            fixed: 20e-3,
            per_step: 0.034e-3,
            peak_flops: 14.0e12,
            param_limit: None,
        }
    }

    /// PyTorch 1.7 GPU (unfused per-timestep RNN path).
    pub fn pytorch() -> Self {
        Self {
            name: "PyTorch-GPU",
            fixed: 12e-3,
            per_step: 0.30e-3,
            peak_flops: 14.0e12,
            param_limit: Some(65_000_000),
        }
    }

    /// GEMM efficiency for a given problem size: small batches cannot
    /// fill the SMs (saturating in `batch × hidden`).
    fn gemm_efficiency(batch: usize, hidden: usize) -> f64 {
        let x = (batch * hidden) as f64;
        let half_point = 8192.0;
        0.65 * x / (x + half_point)
    }

    /// Batch time in seconds, or `None` if the model exceeds the
    /// framework's working parameter limit (the paper leaves those table
    /// entries empty).
    pub fn batch_time(&self, cfg: &BrnnConfig, batch: usize, phase: Phase) -> Option<f64> {
        if let Some(limit) = self.param_limit {
            if cfg.rnn_param_count() > limit {
                return None;
            }
        }
        let hidden = cfg.hidden_size;
        let eff = Self::gemm_efficiency(batch, hidden);
        let mut total = self.fixed;
        for l in 0..cfg.layers {
            let input = cfg.layer_input_size(l);
            // Both directions per step (they run concurrently on the GPU,
            // so flops add but dispatch does not double).
            let flops = 2.0 * cfg.cell.forward_flops(batch, input, hidden) as f64;
            let gemm = flops / (self.peak_flops * eff.max(0.01));
            total += cfg.seq_len as f64 * (self.per_step + gemm);
        }
        if phase == Phase::Training {
            // Backward kernels: ~2× flops, same dispatch count.
            total = self.fixed + (total - self.fixed) * 3.0;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpar_core::cell::CellKind;
    use bpar_core::merge::MergeMode;
    use bpar_core::model::ModelKind;

    fn cfg(cell: CellKind, input: usize, hidden: usize, seq: usize) -> BrnnConfig {
        BrnnConfig {
            cell,
            input_size: input,
            hidden_size: hidden,
            layers: 6,
            seq_len: seq,
            output_size: 11,
            merge: MergeMode::Sum,
            kind: ModelKind::ManyToOne,
        }
    }

    #[test]
    fn keras_gpu_lands_near_table3() {
        let k = GpuFramework::keras();
        // 256/256/128/100 → 0.133 s.
        let t = k
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 100), 128, Phase::Training)
            .unwrap();
        assert!((0.06..0.4).contains(&t), "got {t}, paper 0.133");
        // 256/256/1/2 → 0.0245 s: fixed-cost dominated.
        let t = k
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 2), 1, Phase::Training)
            .unwrap();
        assert!((0.015..0.05).contains(&t), "got {t}, paper 0.0245");
    }

    #[test]
    fn pytorch_gpu_is_dispatch_bound_in_seq_len() {
        let p = GpuFramework::pytorch();
        let t100 = p
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 100), 128, Phase::Training)
            .unwrap();
        let t10 = p
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 10), 1, Phase::Training)
            .unwrap();
        let t2 = p
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 2), 1, Phase::Training)
            .unwrap();
        // Paper: ≈ 0.59 s, 0.065 s, 0.023 s.
        assert!((0.3..1.2).contains(&t100), "got {t100}, paper 0.59");
        assert!((0.03..0.13).contains(&t10), "got {t10}, paper 0.065");
        assert!((0.015..0.05).contains(&t2), "got {t2}, paper 0.023");
    }

    #[test]
    fn pytorch_gpu_hangs_on_giant_models() {
        let p = GpuFramework::pytorch();
        // 64/1024 BLSTM = 92.8M params: the paper's empty cells.
        let t = p.batch_time(&cfg(CellKind::Lstm, 64, 1024, 100), 256, Phase::Training);
        assert!(t.is_none());
        // Keras-GPU still runs it.
        let t = GpuFramework::keras()
            .batch_time(&cfg(CellKind::Lstm, 64, 1024, 100), 256, Phase::Training)
            .unwrap();
        assert!((0.5..3.5).contains(&t), "got {t}, paper 1.28");
    }

    #[test]
    fn gpu_beats_cpu_at_large_scale_only() {
        // Sanity: per the paper's headline, the GPU should be much faster
        // than 2 s for the big-batch config but slower than ~15 ms for
        // batch 1 / seq 2 (where B-Par-CPU measures 14.9 ms).
        let k = GpuFramework::keras();
        let big = k
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 100), 256, Phase::Training)
            .unwrap();
        assert!(big < 0.6);
        let small = k
            .batch_time(&cfg(CellKind::Lstm, 256, 256, 2), 1, Phase::Training)
            .unwrap();
        assert!(small > 0.015);
    }

    #[test]
    fn efficiency_saturates() {
        let lo = GpuFramework::gemm_efficiency(1, 256);
        let hi = GpuFramework::gemm_efficiency(256, 1024);
        assert!(lo < 0.05);
        assert!(hi > 0.5 && hi < 0.65);
    }

    #[test]
    fn inference_is_cheaper_than_training() {
        let k = GpuFramework::keras();
        let c = cfg(CellKind::Gru, 256, 256, 100);
        let i = k.batch_time(&c, 128, Phase::Inference).unwrap();
        let t = k.batch_time(&c, 128, Phase::Training).unwrap();
        assert!(t > 2.0 * i);
    }
}
