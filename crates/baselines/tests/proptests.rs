//! Property-based tests of the framework cost models: monotonicity and
//! dominance relations that must hold for *any* model configuration.

use bpar_baselines::{CpuFramework, GpuFramework, Phase};
use bpar_core::cell::CellKind;
use bpar_core::merge::MergeMode;
use bpar_core::model::{BrnnConfig, ModelKind};
use bpar_sim::Machine;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = BrnnConfig> {
    (
        prop_oneof![Just(CellKind::Lstm), Just(CellKind::Gru)],
        prop_oneof![Just(32usize), Just(64), Just(256), Just(1024)],
        prop_oneof![Just(64usize), Just(128), Just(256), Just(512)],
        1usize..13,
        prop_oneof![Just(2usize), Just(10), Just(50), Just(100)],
    )
        .prop_map(
            |(cell, input_size, hidden_size, layers, seq_len)| BrnnConfig {
                cell,
                input_size,
                hidden_size,
                layers,
                seq_len,
                output_size: 11,
                merge: MergeMode::Sum,
                kind: ModelKind::ManyToOne,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn training_dominates_inference(cfg in arb_config(), batch in 1usize..512) {
        let m = Machine::xeon_8160();
        for fw in [CpuFramework::keras(), CpuFramework::pytorch()] {
            let inf = fw.batch_time(&cfg, batch, 16, &m, Phase::Inference);
            let trn = fw.batch_time(&cfg, batch, 16, &m, Phase::Training);
            prop_assert!(trn > inf, "{}: {trn} vs {inf}", fw.name);
        }
    }

    #[test]
    fn time_is_monotone_in_layers_and_seq(cfg in arb_config(), batch in 1usize..512) {
        let m = Machine::xeon_8160();
        let fw = CpuFramework::keras();
        let base = fw.batch_time(&cfg, batch, 24, &m, Phase::Training);
        let deeper = BrnnConfig { layers: cfg.layers + 1, ..cfg };
        prop_assert!(fw.batch_time(&deeper, batch, 24, &m, Phase::Training) > base);
        let longer = BrnnConfig { seq_len: cfg.seq_len + 10, ..cfg };
        prop_assert!(fw.batch_time(&longer, batch, 24, &m, Phase::Training) > base);
    }

    #[test]
    fn best_core_count_is_really_best(cfg in arb_config(), batch in 1usize..512) {
        let m = Machine::xeon_8160();
        for fw in [CpuFramework::keras(), CpuFramework::pytorch()] {
            let (best, _) = fw.best_batch_time(&cfg, batch, &m, Phase::Training);
            for cores in [1usize, 2, 4, 8, 16, 24, 32, 48] {
                prop_assert!(
                    best <= fw.batch_time(&cfg, batch, cores, &m, Phase::Training) + 1e-12
                );
            }
        }
    }

    #[test]
    fn pytorch_never_beats_keras(cfg in arb_config(), batch in 1usize..512) {
        let m = Machine::xeon_8160();
        let (k, _) = CpuFramework::keras().best_batch_time(&cfg, batch, &m, Phase::Training);
        let (p, _) = CpuFramework::pytorch().best_batch_time(&cfg, batch, &m, Phase::Training);
        prop_assert!(p >= k, "PyTorch {p} beat Keras {k}");
    }

    #[test]
    fn gpu_models_respect_param_limits(cfg in arb_config(), batch in 1usize..512) {
        let keras = GpuFramework::keras().batch_time(&cfg, batch, Phase::Training);
        prop_assert!(keras.is_some(), "Keras-GPU always runs");
        let pytorch = GpuFramework::pytorch().batch_time(&cfg, batch, Phase::Training);
        if cfg.rnn_param_count() > 65_000_000 {
            prop_assert!(pytorch.is_none());
        } else {
            prop_assert!(pytorch.unwrap() > 0.0);
        }
    }

    #[test]
    fn gpu_time_grows_with_batch(cfg in arb_config()) {
        let k = GpuFramework::keras();
        let small = k.batch_time(&cfg, 1, Phase::Training).unwrap();
        let large = k.batch_time(&cfg, 512, Phase::Training).unwrap();
        prop_assert!(large >= small);
    }
}
