//! Speech recognition on the synthetic TIDIGITS corpus — the paper's
//! many-to-one workload (§IV-B).
//!
//! Trains a bidirectional LSTM digit classifier with the B-Par executor
//! (model + data parallelism, mbs:4) and reports per-epoch loss, test
//! accuracy, and mean batch training time for B-Par vs the sequential
//! reference.
//!
//! Run with: `cargo run --release -p bpar-apps --example speech_recognition`

use bpar_core::prelude::*;
use bpar_core::train::{Batch, Trainer};
use bpar_data::tidigits::{TidigitsDataset, DIGIT_CLASSES};
use bpar_runtime::SchedulerPolicy;

fn main() {
    let config = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 20,
        hidden_size: 32,
        layers: 2,
        seq_len: 14,
        output_size: DIGIT_CLASSES,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let data = TidigitsDataset::new(config.input_size, 11, 1234);

    // 40 training batches of 16 utterances, one held-out eval batch.
    let train: Vec<Batch<f32>> = (0..40u64)
        .map(|i| {
            let (xs, labels) = data.batch(i * 16, 16, config.seq_len);
            Batch {
                xs,
                target: Target::Classes(labels),
            }
        })
        .collect();
    let eval: Vec<Batch<f32>> = vec![{
        let (xs, labels) = data.batch(100_000, 128, config.seq_len);
        Batch {
            xs,
            target: Target::Classes(labels),
        }
    }];

    let bpar = TaskGraphExec::with_config(0, SchedulerPolicy::LocalityAware, 4);
    let sequential = SequentialExec::new();

    let mut model: Brnn<f32> = Brnn::new(config, 7);
    let mut trainer = Trainer::new(&bpar, Box::new(Momentum::new(0.05, 0.9)));
    println!("epoch  loss      test-accuracy  mean-batch-ms");
    for epoch in 0..6 {
        let stats = trainer.train_epoch(&mut model, &train);
        let acc = trainer.evaluate(&model, &eval);
        println!(
            "{epoch:>5}  {:<8.4}  {:>12.1}%  {:>12.2}",
            stats.final_loss(),
            acc * 100.0,
            stats.mean_batch_ms()
        );
    }
    let acc = trainer.evaluate(&model, &eval);
    assert!(acc > 0.8, "digit accuracy should exceed 80%, got {acc}");

    // Timing comparison on one epoch (this container may have few cores;
    // the scaling experiments use the simulator — see `bpar-bench`).
    let mut m1: Brnn<f32> = Brnn::new(config, 7);
    let mut t1 = Trainer::new(&sequential, Box::new(Sgd::new(0.05)));
    let s1 = t1.train_epoch(&mut m1, &train);
    let mut m2: Brnn<f32> = Brnn::new(config, 7);
    let mut t2 = Trainer::new(&bpar, Box::new(Sgd::new(0.05)));
    let s2 = t2.train_epoch(&mut m2, &train);
    println!(
        "\nmean batch time: sequential {:.2} ms, b-par {:.2} ms ({} workers)",
        s1.mean_batch_ms(),
        s2.mean_batch_ms(),
        bpar.runtime().workers()
    );
    println!(
        "parameter agreement after one epoch: {:e}",
        m1.max_param_diff(&m2)
    );
}
