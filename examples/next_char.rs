//! Next-character prediction on the synthetic Wikipedia-like corpus —
//! the paper's many-to-many workload (§IV-C).
//!
//! Trains a bidirectional GRU with the B-Par executor, tracks perplexity,
//! and prints a sample of corpus text alongside the model's most likely
//! continuation characters.
//!
//! Run with: `cargo run --release -p bpar-apps --example next_char`

use bpar_core::loss::perplexity;
use bpar_core::prelude::*;
use bpar_data::wikitext::{WikitextDataset, VOCAB, VOCAB_SIZE};

fn main() {
    let config = BrnnConfig {
        cell: CellKind::Gru,
        input_size: VOCAB_SIZE,
        hidden_size: 48,
        layers: 2,
        seq_len: 24,
        output_size: VOCAB_SIZE,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToMany,
    };
    let data = WikitextDataset::new(99);
    println!(
        "Corpus sample: \"{}\"",
        WikitextDataset::decode(&data.generate(0, 72))
    );
    println!(
        "Unigram entropy: {:.2} nats (uniform would be {:.2})\n",
        data.unigram_entropy(1, 20_000),
        (VOCAB_SIZE as f64).ln()
    );

    let exec = TaskGraphExec::new(0);
    let mut model: Brnn<f32> = Brnn::new(config, 3);
    let mut opt = Adam::new(0.01);

    println!("step  loss    perplexity");
    let uniform_ppl = VOCAB_SIZE as f64;
    let mut last = f64::INFINITY;
    for step in 0..60 {
        let (xs, targets) = data.batch::<f32>(step * 32, 32, config.seq_len);
        last = exec.train_batch(&mut model, &xs, &Target::SeqClasses(targets), &mut opt);
        if step % 10 == 0 {
            println!("{step:>4}  {last:<6.3}  {:<6.1}", perplexity(last));
        }
    }
    println!("...   {last:<6.3}  {:<6.1}", perplexity(last));
    assert!(
        perplexity(last) < uniform_ppl * 0.5,
        "model should beat half of the uniform perplexity ({uniform_ppl})"
    );

    // Show the model predicting: feed a window, print argmax next-chars.
    let (xs, targets) = data.batch::<f32>(1_000_000, 1, config.seq_len);
    let out = exec.forward(&model, &xs);
    let mut context = String::new();
    let mut predicted = String::new();
    let mut actual = String::new();
    for t in 0..config.seq_len {
        let hot = xs[t].row(0).iter().position(|&v| v == 1.0).unwrap();
        context.push(VOCAB[hot] as char);
        let row = out.seq_logits[t].row(0);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        predicted.push(VOCAB[argmax] as char);
        actual.push(VOCAB[targets[t][0]] as char);
    }
    println!("\ncontext   : {context}");
    println!("actual    : {actual}");
    println!("predicted : {predicted}");
}
