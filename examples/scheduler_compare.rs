//! Scheduler and scaling exploration: runs the same BRNN training graph
//! (a) live, on this machine's cores, under FIFO vs locality-aware
//! scheduling, and (b) through the multi-core simulator across 1–48
//! virtual cores, with and without per-layer barriers — a miniature of
//! the paper's Figs. 4 and 7.
//!
//! Run with: `cargo run --release -p bpar-apps --example scheduler_compare`

use bpar_core::graphgen::{build_graph, GraphSpec};
use bpar_core::prelude::*;
use bpar_runtime::SchedulerPolicy;
use bpar_sim::{simulate, SimConfig};
use bpar_tensor::init;

fn main() {
    let config = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 16,
        hidden_size: 32,
        layers: 4,
        seq_len: 16,
        output_size: 4,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    let batch: Vec<_> = (0..config.seq_len)
        .map(|t| init::uniform::<f32>(24, config.input_size, -1.0, 1.0, t as u64))
        .collect();
    let target = Target::Classes((0..24).map(|r| r % 4).collect());

    // (a) Live runs on the real machine.
    println!("Live execution on this machine:");
    for (name, policy) in [
        ("locality-aware", SchedulerPolicy::LocalityAware),
        ("fifo", SchedulerPolicy::Fifo),
    ] {
        let exec = TaskGraphExec::with_config(0, policy, 4);
        let mut model: Brnn<f32> = Brnn::new(config, 5);
        let mut opt = Sgd::new(0.05);
        // Warm up, then measure a few batches.
        exec.train_batch(&mut model, &batch, &target, &mut opt);
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            exec.train_batch(&mut model, &batch, &target, &mut opt);
        }
        let stats = exec.runtime().stats();
        println!(
            "  {name:<15} {:>7.2} ms/batch   {} tasks/batch, avg task {:.0} us, overhead ratio {:.3}",
            t0.elapsed().as_secs_f64() * 1e3 / 5.0,
            stats.tasks,
            stats.avg_task_time() * 1e6,
            stats.overhead_ratio(),
        );
    }

    // (b) Simulated scaling on the paper's 48-core Xeon.
    let paper_scale = BrnnConfig {
        input_size: 256,
        hidden_size: 256,
        layers: 6,
        seq_len: 100,
        output_size: 11,
        ..config
    };
    let free = build_graph(&GraphSpec::training(paper_scale, 128).with_mbs(8));
    let barred = build_graph(
        &GraphSpec::training(paper_scale, 128)
            .with_mbs(8)
            .with_barriers(true),
    );
    println!("\nSimulated 48-core Xeon (6-layer BLSTM, batch 128, mbs:8):");
    println!("cores  barrier-free(s)  per-layer-barriers(s)");
    for cores in [1usize, 4, 8, 16, 24, 48] {
        let f = simulate(&free, &SimConfig::xeon(cores)).makespan;
        let b = simulate(&barred, &SimConfig::xeon(cores)).makespan;
        println!("{cores:>5}  {f:>15.2}  {b:>21.2}");
    }
    println!("\nBarrier-free B-Par keeps scaling where the per-layer-barrier");
    println!("schedule (Keras/PyTorch discipline) saturates — the paper's core claim.");
}
