//! Quickstart: build a bidirectional LSTM, train it with the barrier-free
//! B-Par executor, and verify the result matches a sequential run
//! bit-for-bit.
//!
//! Run with: `cargo run --release -p bpar-apps --example quickstart`

use bpar_core::prelude::*;
use bpar_tensor::init;

fn main() {
    // A 3-layer bidirectional LSTM classifier.
    let config = BrnnConfig {
        cell: CellKind::Lstm,
        input_size: 8,
        hidden_size: 16,
        layers: 3,
        seq_len: 12,
        output_size: 4,
        merge: MergeMode::Sum,
        kind: ModelKind::ManyToOne,
    };
    println!(
        "Model: {} layers, {} hidden units/direction, {} trainable parameters",
        config.layers,
        config.hidden_size,
        config.total_param_count()
    );

    // A toy batch: 16 random sequences, 4 classes.
    let batch: Vec<_> = (0..config.seq_len)
        .map(|t| init::uniform::<f32>(16, config.input_size, -1.0, 1.0, t as u64))
        .collect();
    let target = Target::Classes((0..16).map(|r| r % 4).collect());

    // Train the same model with the sequential reference and with B-Par
    // (every RNN cell update is a task; no per-layer barriers).
    let mut seq_model: Brnn<f32> = Brnn::new(config, 42);
    let mut bpar_model: Brnn<f32> = Brnn::new(config, 42);
    let sequential = SequentialExec::new();
    let bpar = TaskGraphExec::new(0); // 0 = use all available cores

    let mut seq_opt = Sgd::new(0.1);
    let mut bpar_opt = Sgd::new(0.1);
    println!("\nstep  sequential-loss  b-par-loss");
    for step in 0..10 {
        let l1 = sequential.train_batch(&mut seq_model, &batch, &target, &mut seq_opt);
        let l2 = bpar.train_batch(&mut bpar_model, &batch, &target, &mut bpar_opt);
        println!("{step:>4}  {l1:>15.6}  {l2:>10.6}");
        assert_eq!(l1, l2, "losses must match bit-for-bit");
    }

    // The trained weights are bit-identical: task-based orchestration
    // loses no accuracy (paper §III).
    let diff = seq_model.max_param_diff(&bpar_model);
    println!("\nMax parameter difference after training: {diff:e}");
    assert_eq!(diff, 0.0);

    // Inference through the public API.
    let out = bpar.forward(&bpar_model, &batch);
    println!("Logits for first sample: {:?}", &out.logits.row(0));
    let stats = bpar.runtime().stats();
    println!(
        "B-Par executed {} tasks in the last batch (peak concurrency {}).",
        stats.tasks, stats.peak_concurrency
    );
}
